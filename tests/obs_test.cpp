#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "camodel/generate.hpp"
#include "camodel/model_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timing.hpp"

namespace caml {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsSnapshot;
using obs::Registry;

// ---------------------------------------------------------------------------
// Counters / gauges under concurrency. The Obs* suites are part of the
// TSan sweep (scripts/check_tsan.sh), so these tests double as data-race
// checks on the lock-free mutation paths.

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Counter counter;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsGauge, UpdateMaxIsMonotonicUnderConcurrency) {
  constexpr std::size_t kThreads = 8;
  Gauge gauge;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (std::int64_t v = 0; v <= 1000; ++v) {
        gauge.update_max(static_cast<std::int64_t>(t) * 1000 + v);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.value(), 8000);  // max thread (7) * 1000 + max v (1000)
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.sum, 28u);
  EXPECT_EQ(s.max, 7u);
  for (std::uint64_t v = 0; v < 8; ++v) EXPECT_EQ(s.buckets[v], 1u);
}

TEST(ObsHistogram, BucketBoundsAreConsistent) {
  // Every value maps into a bucket whose upper bound is >= the value and
  // within ~9% of it (1/8 sub-bucket resolution above the exact range).
  for (std::uint64_t v : {8ull, 9ull, 100ull, 1000ull, 4095ull, 4096ull, 1234567ull,
                          (1ull << 32), (1ull << 40) - 1}) {
    const std::size_t b = Histogram::bucket_for(v);
    const double upper = Histogram::bucket_upper(b);
    EXPECT_GE(upper, static_cast<double>(v)) << "value " << v;
    EXPECT_LE(upper, static_cast<double>(v) * 1.1251) << "value " << v;
    if (b > 0) {
      EXPECT_LT(Histogram::bucket_upper(b - 1), static_cast<double>(v)) << "value " << v;
    }
  }
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountAndSum) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(t * 1000 + (i % 97));
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.max, 7096u);  // max thread (7) * 1000 + max residue (96)
}

TEST(ObsHistogram, PercentilesBracketTheDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_NEAR(s.percentile(0.5), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.percentile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_GE(s.percentile(1.0), 1000.0 * 0.89);
  EXPECT_EQ(s.percentile(0.0), 1.0);
  EXPECT_EQ(HistogramSnapshot{}.percentile(0.5), 0.0);
}

TEST(ObsHistogram, DiffIsolatesTheDelta) {
  Histogram h;
  h.record(10);
  h.record(20);
  const HistogramSnapshot before = h.snapshot();
  h.record(30);
  h.record(40);
  const HistogramSnapshot delta = h.snapshot().diff(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 70u);
}

// ---------------------------------------------------------------------------
// Snapshot merge

MetricsSnapshot snapshot_of(std::uint64_t c, std::int64_t g,
                            std::vector<std::uint64_t> values) {
  Registry r;
  r.counter("caml_test_counter").add(c);
  r.gauge("caml_test_gauge").add(g);
  Histogram& h = r.histogram("caml_test_hist", "help text");
  for (std::uint64_t v : values) h.record(v);
  return r.snapshot();
}

TEST(ObsSnapshot, MergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = snapshot_of(1, 10, {5, 500});
  const MetricsSnapshot b = snapshot_of(2, 20, {50});
  const MetricsSnapshot c = snapshot_of(3, 30, {1, 2, 3, 5000000});

  MetricsSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  MetricsSnapshot bc = b;
  bc.merge(c);
  MetricsSnapshot a_bc = a;
  a_bc.merge(bc);

  MetricsSnapshot cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);
  EXPECT_EQ(ab_c.counters.at("caml_test_counter"), 6u);
  EXPECT_EQ(ab_c.gauges.at("caml_test_gauge"), 60);
  EXPECT_EQ(ab_c.histograms.at("caml_test_hist").count, 7u);
  EXPECT_EQ(ab_c.histograms.at("caml_test_hist").max, 5000000u);
}

TEST(ObsSnapshot, TextExpositionIsPrometheusShaped) {
  Registry r;
  r.counter("caml_demo_total", "Demo events").add(3);
  r.gauge("caml_demo_depth").set(-2);
  Histogram& h = r.histogram("caml_demo_us", "Demo latency");
  h.record(4);
  h.record(100);
  const std::string text = r.snapshot().to_text();

  EXPECT_NE(text.find("# HELP caml_demo_total Demo events\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE caml_demo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE caml_demo_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE caml_demo_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_us_bucket{le=\"4\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_us_sum 104\n"), std::string::npos);
  EXPECT_NE(text.find("caml_demo_us_count 2\n"), std::string::npos);
  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(text, r.snapshot().to_text());
}

TEST(ObsRegistry, NamesAreStableAndTypeChecked) {
  Registry r;
  Counter& c1 = r.counter("caml_thing_total");
  Counter& c2 = r.counter("caml_thing_total");
  EXPECT_EQ(&c1, &c2);
  EXPECT_THROW(r.gauge("caml_thing_total"), Error);
  EXPECT_THROW(r.histogram("caml_thing_total"), Error);
  EXPECT_THROW(r.counter("bad name"), Error);
  EXPECT_THROW(r.counter("0starts_with_digit"), Error);
  EXPECT_THROW(r.counter(""), Error);
}

// ---------------------------------------------------------------------------
// Tracing + profiling

/// Minimal JSON well-formedness checker (objects, arrays, strings with
/// escapes, numbers, literals) — enough to prove the exported trace
/// parses back, without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (static_cast<unsigned char>(text_[pos_]) < 0x20) return false;  // raw control
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ObsTrace, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(obs::trace_active());
  CAML_TRACE_SPAN("never_recorded");
  // Nothing observable: starting a trace afterwards must not see it.
  obs::trace_start();
  const std::string json = obs::trace_stop_json();
  EXPECT_EQ(json.find("never_recorded"), std::string::npos);
}

TEST(ObsTrace, ExportsWellFormedChromeJson) {
  obs::trace_start();
  ASSERT_TRUE(obs::trace_active());
  {
    obs::TraceSpan outer("outer_stage");
    outer.attr("cell", std::string("NAND2 \"quoted\"\n"));
    outer.attr("rows", std::int64_t{42});
    CAML_TRACE_SPAN_ITEMS("inner_stage", 7);
  }
  std::thread([] { CAML_TRACE_SPAN("worker_stage"); }).join();
  const std::string json = obs::trace_stop_json();
  EXPECT_FALSE(obs::trace_active());

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"inner_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":7"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":42"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_EQ(obs::trace_dropped_events(), 0u);
}

TEST(ObsProfile, RollupsAggregateByStage) {
  obs::profile_start();
  for (int i = 0; i < 3; ++i) {
    CAML_TRACE_SPAN_ITEMS("profiled_stage", 10);
  }
  obs::profile_stop();
  bool found = false;
  for (const auto& [name, stats] : obs::profile_snapshot()) {
    if (name != "profiled_stage") continue;
    found = true;
    EXPECT_EQ(stats.calls, 3u);
    EXPECT_EQ(stats.items, 30u);
  }
  EXPECT_TRUE(found);
  const std::string summary = obs::profile_summary();
  EXPECT_NE(summary.find("profiled_stage"), std::string::npos);
  // A fresh profile clears the rollups.
  obs::profile_start();
  obs::profile_stop();
  EXPECT_TRUE(obs::profile_snapshot().empty());
}

TEST(ObsTrace, ModelOutputsAreByteIdenticalWithObsOnAndOff) {
  const Cell cell = testing::make_nand2();
  GenerationOptions options;

  const CaModel baseline = generate_ca_model(cell, options);
  const std::string baseline_text = ca_model_to_string(baseline, cell);

  obs::trace_start();
  obs::profile_start();
  const CaModel traced = generate_ca_model(cell, options);
  const std::string traced_text = ca_model_to_string(traced, cell);
  const std::string json = obs::trace_stop_json();
  obs::profile_stop();

  EXPECT_EQ(traced_text, baseline_text);
  // The traced run actually recorded the generation stages.
  EXPECT_NE(json.find("\"generate_ca_model\""), std::string::npos);
  EXPECT_NE(json.find("\"golden_sim\""), std::string::npos);
  EXPECT_NE(json.find("\"simulate\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Log rate limiter

TEST(ObsRateLimiter, GatesByInterval) {
  LogRateLimiter gate(1000);
  EXPECT_TRUE(gate.allow(5000));    // first call always passes
  EXPECT_FALSE(gate.allow(5500));   // inside the interval
  EXPECT_FALSE(gate.allow(5999));
  EXPECT_TRUE(gate.allow(6000));    // interval elapsed
  EXPECT_FALSE(gate.allow(6001));
}

TEST(ObsRateLimiter, ConcurrentCallersGetAtMostOneGrantPerInterval) {
  constexpr std::size_t kThreads = 8;
  LogRateLimiter gate(1'000'000'000);  // one grant, ever, within this test
  std::atomic<std::size_t> granted{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (gate.allow(monotonic_us())) granted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(granted.load(), 1u);
}

}  // namespace
}  // namespace caml
