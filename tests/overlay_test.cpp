// DefectOverlay contract: apply() realizes exactly the inject_defect()
// netlist transformation in place, revert() restores the base cell
// exactly, and the pair round-trips for every defect kind the universe
// can produce. Simulation equivalence (overlay vs. copy) is what makes
// the zero-allocation characterization loop safe.
#include <gtest/gtest.h>

#include "defect/injector.hpp"
#include "defect/overlay.hpp"
#include "defect/universe.hpp"
#include "sim/switch_sim.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

// Structural equality on everything simulation reads. Net and device
// names are allowed to differ only for defect-added elements — none
// exist when comparing a reverted overlay against its base.
void expect_same_cell(const Cell& got, const Cell& want, const std::string& context) {
  ASSERT_EQ(got.num_nets(), want.num_nets()) << context;
  ASSERT_EQ(got.num_transistors(), want.num_transistors()) << context;
  for (std::size_t n = 0; n < want.num_nets(); ++n) {
    EXPECT_EQ(got.nets()[n].name, want.nets()[n].name) << context << " net " << n;
    EXPECT_EQ(got.nets()[n].kind, want.nets()[n].kind) << context << " net " << n;
  }
  for (std::size_t t = 0; t < want.num_transistors(); ++t) {
    const Transistor& g = got.transistors()[t];
    const Transistor& w = want.transistors()[t];
    EXPECT_EQ(g.name, w.name) << context << " device " << t;
    EXPECT_EQ(g.type, w.type) << context << " device " << t;
    EXPECT_EQ(g.drain, w.drain) << context << " device " << t;
    EXPECT_EQ(g.gate, w.gate) << context << " device " << t;
    EXPECT_EQ(g.source, w.source) << context << " device " << t;
    EXPECT_EQ(g.bulk, w.bulk) << context << " device " << t;
    EXPECT_EQ(g.width_um, w.width_um) << context << " device " << t;
    EXPECT_EQ(g.length_um, w.length_um) << context << " device " << t;
  }
  // Derived pin caches must have been refreshed too.
  EXPECT_EQ(got.inputs(), want.inputs()) << context;
  EXPECT_EQ(got.output(), want.output()) << context;
  EXPECT_EQ(got.vdd(), want.vdd()) << context;
  EXPECT_EQ(got.vss(), want.vss()) << context;
}

UniverseOptions full_universe() {
  UniverseOptions options;
  options.inter_transistor_shorts = true;
  options.resistive_variants = true;
  return options;
}

TEST(DefectOverlay, ApplyRevertRoundTripsEveryDefectKind) {
  const Cell base = testing::make_fig5_cell();
  const std::vector<Defect> universe = enumerate_defects(base, full_universe());
  ASSERT_FALSE(universe.empty());
  DefectOverlay overlay(base);
  expect_same_cell(overlay.cell(), base, "fresh overlay");
  for (const Defect& defect : universe) {
    overlay.apply(defect);
    EXPECT_TRUE(overlay.applied());
    overlay.revert();
    EXPECT_FALSE(overlay.applied());
    expect_same_cell(overlay.cell(), base, "after " + defect.describe(base));
  }
}

TEST(DefectOverlay, AppliedCellSimulatesIdenticallyToInjectDefect) {
  for (const Cell& base : {testing::make_nand2(), testing::make_nor2(), testing::make_fig5_cell()}) {
    const std::vector<Defect> universe = enumerate_defects(base, full_universe());
    const auto stimuli = generate_stimuli(base.num_inputs(), StimulusPolicy::kExhaustivePairs);
    DefectOverlay overlay(base);
    SwitchSim sim(overlay.cell());
    sim.reserve(base.num_nets() + DefectOverlay::kMaxExtraNets,
                base.num_transistors() + DefectOverlay::kMaxExtraTransistors);
    for (const Defect& defect : universe) {
      const Cell copied = inject_defect(base, defect);
      SwitchSim reference(copied);
      overlay.apply(defect);
      sim.rebind();
      for (const Stimulus& s : stimuli) {
        EXPECT_EQ(sim.run(s), reference.run(s))
            << base.name() << ": " << defect.describe(base) << " under " << s.to_string();
      }
      overlay.revert();
    }
  }
}

TEST(DefectOverlay, RunBatchMatchesPerStimulusRuns) {
  const Cell base = testing::make_fig5_cell();
  const auto stimuli = generate_stimuli(base.num_inputs(), StimulusPolicy::kExhaustivePairs);
  DefectOverlay overlay(base);
  SwitchSim sim(overlay.cell());
  std::vector<Sig> batch(stimuli.size(), Sig::kX);
  for (const Defect& defect : enumerate_defects(base)) {
    overlay.apply(defect);
    sim.rebind();
    sim.run_batch(stimuli, batch.data());
    for (std::size_t s = 0; s < stimuli.size(); ++s) {
      EXPECT_EQ(batch[s], sim.run(stimuli[s]))
          << defect.describe(base) << " stimulus " << stimuli[s].to_string();
    }
    overlay.revert();
  }
}

TEST(DefectOverlay, InvalidTransistorThrowsAndLeavesCellUnchanged) {
  const Cell base = testing::make_nand2();
  DefectOverlay overlay(base);
  Defect bad;
  bad.kind = DefectKind::kOpen;
  bad.a = {static_cast<TransistorId>(base.num_transistors()), Terminal::kDrain};
  EXPECT_THROW(overlay.apply(bad), Error);
  EXPECT_FALSE(overlay.applied());
  expect_same_cell(overlay.cell(), base, "after rejected apply");
}

TEST(DefectOverlay, ShortBetweenConnectedNetsThrowsAndLeavesCellUnchanged) {
  const Cell base = testing::make_nor2();
  DefectOverlay overlay(base);
  Defect bad;
  bad.kind = DefectKind::kShort;
  // Both NMOS drains sit on the output net: already connected.
  bad.a = {TransistorId{0}, Terminal::kDrain};
  bad.b = {TransistorId{1}, Terminal::kDrain};
  EXPECT_THROW(overlay.apply(bad), Error);
  EXPECT_FALSE(overlay.applied());
  expect_same_cell(overlay.cell(), base, "after rejected short");
}

TEST(DefectOverlay, DoubleApplyThrows) {
  const Cell base = testing::make_nand2();
  DefectOverlay overlay(base);
  const std::vector<Defect> universe = enumerate_defects(base);
  ASSERT_GE(universe.size(), 2u);
  overlay.apply(universe[0]);
  EXPECT_THROW(overlay.apply(universe[1]), Error);
  // The first defect stays applied and revertible.
  EXPECT_TRUE(overlay.applied());
  overlay.revert();
  expect_same_cell(overlay.cell(), base, "after double-apply recovery");
}

TEST(DefectOverlay, RevertWithoutApplyIsANoOp) {
  const Cell base = testing::make_nand2();
  DefectOverlay overlay(base);
  overlay.revert();
  expect_same_cell(overlay.cell(), base, "revert on fresh overlay");
}

}  // namespace
}  // namespace caml
