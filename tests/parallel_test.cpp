#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include "camodel/model_io.hpp"
#include "flow/characterize.hpp"
#include "ml/dataset.hpp"
#include "ml/forest_io.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace caml {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 10; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> ok = pool.submit([] { return 7; });
  std::future<int> bad = pool.submit([]() -> int { throw Error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), Error);
}

TEST(ParallelMap, PreservesInputOrder) {
  // Early items sleep longest, so completion order is roughly reversed;
  // the result must still be in input order.
  std::vector<int> items;
  for (int i = 0; i < 16; ++i) items.push_back(i);
  const std::vector<int> out = parallel_map(items, 4, [](const int& i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
    return i * 10;
  });
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i * 10);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RethrowsLowestIndexedException) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<int> completed{0};
    try {
      parallel_for(16, jobs, [&](std::size_t i) {
        if (i == 3 || i == 9) throw ParseError("boom at " + std::to_string(i), i);
        ++completed;
      });
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), 3u) << "jobs=" << jobs;
    }
    // Non-throwing tasks all ran: one failure does not abandon the rest
    // (serial mode stops at the throw, which is also its documented
    // in-order behavior).
    if (jobs > 1) EXPECT_EQ(completed.load(), 14);
  }
}

TEST(ParallelHelpers, SerialFallbackRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(4, 1, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
  const std::vector<int> out =
      parallel_map(std::vector<int>{1, 2, 3}, 1, [&](const int& v) { return v + 1; });
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(ResolveJobs, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(3), 3u);
}

Library make_parallel_library() {
  Library lib;
  lib.name = "partest";
  lib.technology = technology_28soi();
  std::uint64_t seed = 100;
  for (const char* function : {"INV", "NAND2", "NOR2", "AOI21", "OAI21", "NAND3"}) {
    lib.cells.push_back(testing::build_function(function, lib.technology, {1, StructureVariant::kWide},
                                                seed++));
  }
  return lib;
}

TEST(ParallelDeterminism, CharacterizeLibraryMatchesSerial) {
  const Library lib = make_parallel_library();
  CharacterizeOptions serial;
  serial.jobs = 1;
  CharacterizeOptions parallel;
  parallel.jobs = 4;
  const std::vector<CharacterizedCell> a = characterize_library(lib, serial);
  const std::vector<CharacterizedCell> b = characterize_library(lib, parallel);
  ASSERT_EQ(a.size(), lib.cells.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Order and content are bit-identical: same cell, same serialized CA
    // model, same canonical signatures.
    EXPECT_EQ(a[i].source.cell.name(), lib.cells[i].cell.name());
    EXPECT_EQ(b[i].source.cell.name(), lib.cells[i].cell.name());
    EXPECT_EQ(ca_model_to_string(a[i].model, a[i].source.cell),
              ca_model_to_string(b[i].model, b[i].source.cell));
    EXPECT_EQ(a[i].canonical.structure_signature, b[i].canonical.structure_signature);
    EXPECT_EQ(a[i].canonical.reduced_signature, b[i].canonical.reduced_signature);
  }
}

TEST(ParallelDeterminism, CharacterizeAlwaysLogsFinalCount) {
  const Library lib = make_parallel_library();  // 6 cells: never hits % 100
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  const LogLevel old_level = Log::level();
  Log::set_level(LogLevel::kInfo);
  characterize_library(lib, {});
  Log::set_level(old_level);
  std::clog.rdbuf(old);
  EXPECT_NE(captured.str().find("characterized 6/6 cells"), std::string::npos) << captured.str();
}

Dataset make_forest_data(std::size_t rows, Rng& rng) {
  Dataset data(6);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t row[6];
    for (auto& v : row) v = static_cast<std::int8_t>(rng.range(-2, 3));
    data.add_row(row, (row[1] > 0) == (row[4] <= 0) ? 1 : 0);
  }
  return data;
}

TEST(ParallelDeterminism, ForestFitMatchesSerialForAnyJobs) {
  Rng rng(91);
  const Dataset train = make_forest_data(1500, rng);
  const Dataset test = make_forest_data(200, rng);

  ForestParams base;
  base.num_trees = 12;
  for (const bool bootstrap : {false, true}) {
    for (const std::size_t cap : {std::size_t{0}, std::size_t{400}}) {
      base.bootstrap = bootstrap;
      base.max_samples_per_tree = cap;

      std::string serialized[2];
      std::vector<std::uint8_t> predictions[2];
      const std::size_t job_counts[2] = {1, 4};
      for (int v = 0; v < 2; ++v) {
        ForestParams params = base;
        params.jobs = job_counts[v];
        RandomForest forest(params);
        forest.fit(train);
        std::ostringstream os;
        write_forest(os, forest, train.num_features());
        serialized[v] = os.str();
        predictions[v] = forest.predict_all(test);
      }
      EXPECT_EQ(serialized[0], serialized[1])
          << "bootstrap=" << bootstrap << " cap=" << cap;
      EXPECT_EQ(predictions[0], predictions[1]);
    }
  }
}

}  // namespace
}  // namespace caml
