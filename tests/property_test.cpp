// Cross-module property tests: invariants that must hold across the
// whole catalog and all technologies, plus robustness of the parsers
// against malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "camodel/generate.hpp"
#include "camodel/model_io.hpp"
#include "flow/model_store.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "sim/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

// The simulator must behave combinationally on every defect-free
// catalog cell: the response to any two-pattern stimulus equals the
// truth table evaluated at the final pattern, regardless of history.
TEST(SimProperty, DynamicResponseMatchesTruthTableAcrossCatalog) {
  for (const Technology& tech : default_technologies()) {
    Rng rng(tech.seed ^ 0xFEED);
    for (const CellFunction& f : function_catalog()) {
      if (f.num_inputs > 3) continue;  // keep the sweep affordable
      Rng cell_rng = rng.fork();
      const Cell cell = build_cell(f, tech, {1, StructureVariant::kWide}, {"", 1.0},
                                   f.name + "_prop", cell_rng);
      const std::uint64_t tt = f.truth_table();
      const auto stimuli =
          generate_stimuli(cell.num_inputs(), StimulusPolicy::kExhaustivePairs);
      SwitchSim sim(cell, tech.sim);
      for (const Stimulus& s : stimuli) {
        const Sig out = sim.run(s);
        const bool expected = (tt >> s.final_pattern()) & 1u;
        ASSERT_EQ(out, expected ? Sig::kOne : Sig::kZero)
            << f.name << " in " << tech.name << " under " << s.to_string();
      }
    }
  }
}

// Every detection bit in a generated CA model corresponds to a real
// binary difference; equivalence classes partition the defect set.
TEST(CaModelProperty, DetectionSoundnessAndEquivalencePartition) {
  const Technology tech = technology_c40();
  Rng rng(0xCAFE);
  for (const char* name : {"NOR3", "OAI22", "MUX2I"}) {
    Rng cell_rng = rng.fork();
    const Cell cell = build_cell(find_function(name), tech, {2, StructureVariant::kSplit},
                                 {"", 1.0}, name, cell_rng);
    GenerationOptions options;
    options.sim = tech.sim;
    const CaModel model = generate_ca_model(cell, options);

    // Partition check.
    std::size_t covered = 0;
    for (const auto& eq_class : model.equivalence_classes) {
      covered += eq_class.size();
      ASSERT_FALSE(eq_class.empty());
      for (std::size_t d : eq_class) {
        ASSERT_EQ(model.defects[d].detection, model.defects[eq_class.front()].detection);
      }
    }
    ASSERT_EQ(covered, model.defects.size());

    // Class consistency.
    for (const CaDefectEntry& d : model.defects) {
      bool any = false;
      for (std::uint8_t bit : d.detection) any |= bit != 0;
      ASSERT_EQ(any, d.klass != DefectClass::kUndetected) << d.defect.describe(cell);
    }
  }
}

// A Wheatstone-bridge NMOS network is not series/parallel
// decomposable: the canonicalizer must fall back gracefully (flagged
// non-SP, stable signature, no throw) and the full pipeline must still
// produce a CA model.
TEST(BranchProperty, NonSpBridgeFallsBackGracefully) {
  Cell cell("BRIDGE");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  const NetId vdd = cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  const NetId l = cell.add_net("l", NetKind::kInternal);
  const NetId r = cell.add_net("r", NetKind::kInternal);
  // Bridge of five NMOS between Z and VSS (gates all on A) + PMOS pull-up.
  cell.add_transistor({"M1", MosType::kNmos, z, a, l, vss, 0.4, 0.03});
  cell.add_transistor({"M2", MosType::kNmos, z, a, r, vss, 0.4, 0.03});
  cell.add_transistor({"M3", MosType::kNmos, l, a, r, vss, 0.4, 0.03});  // the bridge
  cell.add_transistor({"M4", MosType::kNmos, l, a, vss, vss, 0.4, 0.03});
  cell.add_transistor({"M5", MosType::kNmos, r, a, vss, vss, 0.4, 0.03});
  cell.add_transistor({"MP", MosType::kPmos, z, a, vdd, vdd, 0.8, 0.03});
  cell.validate();

  const CanonicalCell canon = canonicalize(cell);
  bool has_nonsp = false;
  for (const Branch& b : canon.branches) has_nonsp |= !b.is_sp;
  EXPECT_TRUE(has_nonsp);
  EXPECT_NE(canon.structure_signature.find("NONSP"), std::string::npos);
  EXPECT_EQ(canon.nmos_order.size() + canon.pmos_order.size(), cell.num_transistors());

  EXPECT_NO_THROW(generate_ca_model(cell));
}

// Truncating a valid netlist at any line must either parse fewer cells
// or throw a caml error — never crash or mis-parse.
TEST(ParserProperty, TruncationsNeverCrash) {
  const SpiceWriter writer;
  std::ostringstream os;
  writer.write_library(os, {testing::make_nand2(), testing::make_fig5_cell()});
  const std::string full = os.str();

  std::vector<std::size_t> line_starts{0};
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') line_starts.push_back(i + 1);
  }
  const SpiceParser parser;
  for (std::size_t cut : line_starts) {
    const std::string text = full.substr(0, cut);
    try {
      const std::vector<Cell> cells = parser.parse_string(text);
      EXPECT_LE(cells.size(), 2u);
    } catch (const Error&) {
      // Acceptable: truncation produced a malformed netlist.
    }
  }
}

// Same for the CA model reader.
TEST(ParserProperty, CaModelTruncationsNeverCrash) {
  const Cell cell = testing::make_nand2();
  const CaModel model = generate_ca_model(cell);
  const std::string full = ca_model_to_string(model, cell);
  for (std::size_t cut = 0; cut < full.size(); cut += 37) {
    std::istringstream in(full.substr(0, cut));
    try {
      read_ca_model(in, cell);
    } catch (const Error&) {
      // Expected for most cuts.
    }
  }
}

// Train a store on one technology, predict an identical-structure cell
// of another: the paper's core cross-technology result through the
// persisted-model API.
TEST(ModelStoreProperty, CrossTechnologyPredictionThroughStore) {
  const Technology soi = technology_28soi();
  const Technology c40 = technology_c40();
  std::vector<CharacterizedCell> training;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    training.push_back(testing::characterize(
        testing::build_function("OAI21", soi, {1, StructureVariant::kWide}, seed), soi));
  }
  MlOptions options;
  options.forest.num_trees = 8;
  GroupModelStore store = GroupModelStore::train(training, options);

  std::stringstream buffer;
  store.save(buffer);
  const GroupModelStore loaded = GroupModelStore::load(buffer);

  const CharacterizedCell target = testing::characterize(
      testing::build_function("OAI21", c40, {1, StructureVariant::kWide}, 9), c40);
  const CaModel predicted = loaded.predict(target.source.cell, target.canonical,
                                           target.model.policy, target.sim);
  EXPECT_GT(ca_model_agreement(target.model, predicted), 0.97);
}

}  // namespace
}  // namespace caml
