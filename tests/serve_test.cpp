#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "camatrix/canonical.hpp"
#include "camodel/model_io.hpp"
#include "flow/model_store.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "obs/metrics.hpp"
#include "serve/batch.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_support.hpp"
#include "util/net.hpp"

namespace caml {
namespace {

using serve::Client;
using serve::ClientOptions;
using serve::decode_error;
using serve::decode_frame;
using serve::decode_header;
using serve::encode_error;
using serve::encode_frame;
using serve::ErrorBody;
using serve::ErrorCode;
using serve::Frame;
using serve::MsgType;
using serve::ProtocolError;
using serve::RemoteError;
using serve::Server;
using serve::ServerOptions;
using testing::build_function;
using testing::characterize;

// ---------------------------------------------------------------------------
// Protocol codec

TEST(ServeProtocol, FrameRoundTrip) {
  Frame frame;
  frame.type = MsgType::kPredictCell;
  frame.request_id = 0x0123456789ABCDEFull;
  frame.payload = std::string("* netlist\n.SUBCKT X A Z\n.ENDS\n\0binary", 37);

  const std::string bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), serve::kHeaderSize + frame.payload.size());
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.version, serve::kProtocolVersion);
  EXPECT_EQ(back.type, frame.type);
  EXPECT_EQ(back.request_id, frame.request_id);
  EXPECT_EQ(back.payload, frame.payload);

  // Empty payload (kPing) round-trips too.
  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 7;
  const Frame ping_back = decode_frame(encode_frame(ping));
  EXPECT_EQ(ping_back.type, MsgType::kPing);
  EXPECT_EQ(ping_back.request_id, 7u);
  EXPECT_TRUE(ping_back.payload.empty());
}

TEST(ServeProtocol, ErrorBodyRoundTrip) {
  const ErrorBody body{ErrorCode::kOverloaded, 75, "queue full"};
  const ErrorBody back = decode_error(encode_error(body));
  EXPECT_EQ(back.code, ErrorCode::kOverloaded);
  EXPECT_EQ(back.retry_after_ms, 75u);
  EXPECT_EQ(back.message, "queue full");

  EXPECT_THROW(decode_error("short"), ProtocolError);
}

TEST(ServeProtocol, RejectsMalformedFrames) {
  const std::string good = encode_frame(Frame{});

  // Truncated: any prefix shorter than a complete frame.
  EXPECT_THROW(decode_frame(std::string_view(good).substr(0, 3)), ProtocolError);
  EXPECT_THROW(decode_frame(std::string_view(good).substr(0, serve::kHeaderSize - 1)),
               ProtocolError);

  // Trailing bytes after the declared payload.
  EXPECT_THROW(decode_frame(good + "x"), ProtocolError);

  // Corrupt magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_frame(bad_magic), ProtocolError);

  // Oversized payload length in the header (kMaxPayload + 1, little-endian
  // at offset 16) must be rejected before any allocation happens.
  std::string oversized = good;
  const std::uint32_t huge = serve::kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    oversized[16 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  EXPECT_THROW(decode_header(reinterpret_cast<const unsigned char*>(oversized.data())),
               ProtocolError);

  // Encoding an over-limit payload is refused symmetrically.
  Frame too_big;
  too_big.payload.resize(serve::kMaxPayload + 1);
  EXPECT_THROW(encode_frame(too_big), ProtocolError);
}

TEST(ServeProtocol, HeaderAcceptsUnknownVersion) {
  // The header decoder must not reject unknown versions: the server reads
  // the full frame and answers kUnsupportedVersion instead of hanging up
  // silently.
  Frame frame;
  frame.version = 99;
  const std::string bytes = encode_frame(frame);
  const serve::FrameHeader header =
      decode_header(reinterpret_cast<const unsigned char*>(bytes.data()));
  EXPECT_EQ(header.version, 99u);
}

TEST(ServeNet, ConnectionLostClassifier) {
  EXPECT_TRUE(is_connection_lost_error("connection lost: connection reset by peer"));
  EXPECT_FALSE(is_connection_lost_error("read timed out after 5000 ms"));
  EXPECT_FALSE(is_connection_lost_error("protocol: bad magic"));
}

// ---------------------------------------------------------------------------
// End-to-end server tests

std::string temp_socket(const char* tag) {
  // Keep it short: AF_UNIX paths are limited to ~100 bytes.
  return (std::filesystem::temp_directory_path() /
          ("caml_t" + std::to_string(::getpid()) + "_" + tag + ".sock"))
      .string();
}

/// One store shared by every server test: a single (2-input, 4-transistor)
/// group trained on one NAND2. Training is the slow part, so do it once.
const GroupModelStore& shared_store() {
  static const GroupModelStore store = [] {
    const Technology tech = technology_28soi();
    std::vector<CharacterizedCell> training;
    training.push_back(
        characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1), tech));
    MlOptions options;
    options.forest.num_trees = 8;
    return GroupModelStore::train(training, options);
  }();
  return store;
}

/// A fresh NAND2 twin (different seed than the training cell).
Cell make_target_nand2() {
  const Technology tech = technology_28soi();
  return build_function("NAND2", tech, {1, StructureVariant::kWide}, 9).cell;
}

TEST(ServeServer, LoopbackPredictMatchesInProcess) {
  const Cell target = make_target_nand2();
  const std::string netlist = SpiceWriter().to_string(target);

  // Ground truth computed in-process with the exact parameters the server
  // uses: the parsed-back cell, default PolicyProfile, default SimConfig.
  const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
  ASSERT_EQ(parsed.size(), 1u);
  const CanonicalCell canonical = canonicalize(parsed.front());
  const CaModel expected_model =
      shared_store().predict(parsed.front(), canonical,
                             PolicyProfile{}.policy_for(parsed.front().num_inputs()),
                             SimConfig{});
  const std::string expected = ca_model_to_string(expected_model, parsed.front());
  ASSERT_FALSE(expected.empty());

  ServerOptions options;
  options.socket_path = temp_socket("loopback");
  options.jobs = 2;
  Server server(shared_store(), options);
  server.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  client.ping();
  const std::string served = client.predict_cell(netlist);
  EXPECT_EQ(served, expected) << "served prediction must be byte-identical";

  // A second request on the same keep-alive connection works and is
  // deterministic.
  EXPECT_EQ(client.predict_cell(netlist), expected);

  const serve::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.requests_ok, 2u);
  EXPECT_EQ(stats.pings, 1u);
  EXPECT_EQ(stats.cells_predicted, 2u);
  EXPECT_GT(stats.rows_classified, 0u);
  EXPECT_EQ(stats.requests_error, 0u);
  server.stop();
}

TEST(ServeServer, TcpLoopbackWorks) {
  ServerOptions options;  // no socket_path: loopback TCP, ephemeral port
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();
  ASSERT_NE(server.port(), 0);

  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);
  client.ping();
  const std::string served = client.predict_cell(SpiceWriter().to_string(make_target_nand2()));
  EXPECT_NE(served.find("CAMODEL"), std::string::npos);
  server.stop();
}

TEST(ServeServer, StatsRequestReturnsUnifiedRegistrySnapshot) {
  ServerOptions options;
  options.socket_path = temp_socket("stats");
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  client.predict_cell(SpiceWriter().to_string(make_target_nand2()));
  const std::string text = client.stats();

  // The payload is the process-wide registry exposition: serve metrics
  // and the instrumented pipeline stages it exercised are all present.
  EXPECT_NE(text.find("# TYPE caml_serve_requests_ok_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE caml_serve_request_latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("caml_serve_request_latency_us_count"), std::string::npos);
  EXPECT_NE(text.find("caml_forest_rows_predicted_total"), std::string::npos);

  // The per-server snapshot counts the STATS request itself, and the
  // delta semantics keep the counts exact for this server instance even
  // though the registry is process-global.
  const serve::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.requests_error, 0u);
  server.stop();
}

TEST(ServeServer, NoGroupIsStructuredErrorAndServerSurvives) {
  const Technology tech = technology_28soi();
  // INV is a (1 input, 2 transistor) group — absent from the NAND2-only
  // store, so the server must answer NO_GROUP rather than fall over.
  const Cell inv = build_function("INV", tech).cell;

  ServerOptions options;
  options.socket_path = temp_socket("nogroup");
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  try {
    client.predict_cell(SpiceWriter().to_string(inv));
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoGroup);
    EXPECT_NE(std::string(e.what()).find("NO_GROUP"), std::string::npos);
  }

  // The error was per-request: the same server still predicts fine.
  const std::string served = client.predict_cell(SpiceWriter().to_string(make_target_nand2()));
  EXPECT_NE(served.find("CAMODEL"), std::string::npos);
  // Regression: a NO_GROUP routing miss is a legitimate answer, not a
  // server failure — it must land in its own counter, and the error rate
  // a monitor would alert on must stay clean.
  const serve::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.no_group, 1u);
  EXPECT_EQ(stats.requests_error, 0u);
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.requests_served(), 2u) << "NO_GROUP answers still count as served";
  server.stop();
}

TEST(ServeServer, UnknownVersionRejected) {
  ServerOptions options;
  options.socket_path = temp_socket("version");
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();

  const Fd conn = connect_unix(options.socket_path, 2000);
  Frame request;
  request.version = 99;
  request.type = MsgType::kPing;
  request.request_id = 42;
  serve::write_frame(conn.get(), request, 2000);
  const std::optional<Frame> response = serve::read_frame(conn.get(), 5000);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MsgType::kError);
  EXPECT_EQ(response->request_id, 42u);
  EXPECT_EQ(decode_error(response->payload).code, ErrorCode::kUnsupportedVersion);
  server.stop();
}

TEST(ServeServer, SurvivesMalformedFrame) {
  ServerOptions options;
  options.socket_path = temp_socket("malformed");
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();

  {
    // Garbage bytes (wrong magic): the server answers BAD_REQUEST
    // best-effort and closes this connection only. Exactly one header's
    // worth, so no unread bytes remain to turn the server's close into a
    // reset that could discard the queued error frame.
    const Fd conn = connect_unix(options.socket_path, 2000);
    const std::string garbage(serve::kHeaderSize, 'X');
    write_all(conn.get(), garbage.data(), garbage.size(), 2000);
    const std::optional<Frame> response = serve::read_frame(conn.get(), 5000);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->type, MsgType::kError);
    EXPECT_EQ(decode_error(response->payload).code, ErrorCode::kBadRequest);
    // Server closes the connection after a framing violation.
    EXPECT_FALSE(serve::read_frame(conn.get(), 5000).has_value());
  }

  // The daemon itself keeps serving.
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  client.ping();
  EXPECT_NE(client.predict_cell(SpiceWriter().to_string(make_target_nand2()))
                .find("CAMODEL"),
            std::string::npos);
  server.stop();
}

TEST(ServeServer, BackpressureRejectsWhenQueueFull) {
  ServerOptions options;
  options.socket_path = temp_socket("backpressure");
  options.jobs = 1;       // one worker to occupy
  options.max_queue = 1;  // one pending slot beyond it
  options.retry_after_ms = 75;
  options.read_timeout_ms = 3000;
  Server server(shared_store(), options);
  server.start();

  // Occupy the single worker: send a partial header so it blocks inside
  // read_frame waiting for the rest (bounded by read_timeout_ms).
  const Fd busy = connect_unix(options.socket_path, 2000);
  const std::string partial = encode_frame(Frame{}).substr(0, 4);
  write_all(busy.get(), partial.data(), partial.size(), 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Fills the one queue slot (no worker free to pick it up).
  const Fd queued = connect_unix(options.socket_path, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Queue full: this connection must be rejected with a structured
  // OVERLOADED error carrying the retry-after hint, without the request
  // ever being read (request id 0).
  const Fd rejected = connect_unix(options.socket_path, 2000);
  const std::optional<Frame> response = serve::read_frame(rejected.get(), 5000);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MsgType::kError);
  EXPECT_EQ(response->request_id, 0u);
  const ErrorBody body = decode_error(response->payload);
  EXPECT_EQ(body.code, ErrorCode::kOverloaded);
  EXPECT_EQ(body.retry_after_ms, 75u);

  EXPECT_EQ(server.stats().rejected_overload, 1u);
  EXPECT_EQ(server.stats().queue_high_water, 1u);
  server.stop();
}

TEST(ServeClient, RemoteErrorsAreNotRetriedAsTransport) {
  // A RemoteError (structured server answer) must surface immediately;
  // only connection-loss transport failures are retried. Exercised by
  // pointing a retry-enabled client at a dead socket: it retries, then
  // fails with a transport Error (not RemoteError).
  ClientOptions copts;
  copts.socket_path = temp_socket("dead");
  copts.connect_timeout_ms = 200;
  copts.retries = 1;
  copts.backoff_ms = 10;
  Client client(copts);
  try {
    client.ping();
    FAIL() << "expected transport Error";
  } catch (const RemoteError&) {
    FAIL() << "a missing server is a transport failure, not a RemoteError";
  } catch (const Error& e) {
    EXPECT_TRUE(is_connection_lost_error(e.what())) << e.what();
  }
}

TEST(ServeServer, ReloadSwapsStoreAtomicallyWhileServing) {
  ServerOptions options;
  options.socket_path = temp_socket("reload");
  options.jobs = 2;
  Server server(shared_store(), options);
  server.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);

  const Technology tech = technology_28soi();
  const LibraryCell inv = build_function("INV", tech, {1, StructureVariant::kWide}, 31);
  const std::string inv_netlist =
      SpiceWriter().to_string(build_function("INV", tech, {1, StructureVariant::kWide}, 32).cell);

  // The initial store only covers the NAND2 group: INV gets NO_GROUP.
  try {
    client.predict_cell(inv_netlist);
    FAIL() << "expected NO_GROUP before the reload";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoGroup);
  }
  EXPECT_FALSE(client.predict_cell(SpiceWriter().to_string(make_target_nand2())).empty());

  // Hot-swap in a store that also covers the INV group — on the same
  // connection, without restarting the server.
  std::vector<CharacterizedCell> training;
  training.push_back(
      characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1), tech));
  training.push_back(characterize(inv, tech));
  MlOptions ml;
  ml.forest.num_trees = 8;
  server.reload(GroupModelStore::train(training, ml));

  EXPECT_FALSE(client.predict_cell(inv_netlist).empty());
  EXPECT_FALSE(client.predict_cell(SpiceWriter().to_string(make_target_nand2())).empty());
  EXPECT_EQ(server.stats().reloads, 1u);
  server.stop();
}

TEST(ServeClient, OverloadRetriesHonorHintAndBudgetCap) {
  ServerOptions options;
  options.socket_path = temp_socket("retrybudget");
  options.jobs = 1;       // one worker to occupy
  options.max_queue = 1;  // one pending slot beyond it
  options.retry_after_ms = 40;
  // Long enough to stay saturated for the whole retry dance (~500 ms),
  // short enough that stop()'s drain of the blocked worker is quick.
  options.read_timeout_ms = 1500;
  Server server(shared_store(), options);
  server.start();

  // Saturate exactly like BackpressureRejectsWhenQueueFull: the worker
  // blocks on a partial header, one connection fills the queue.
  const Fd busy = connect_unix(options.socket_path, 2000);
  const std::string partial = encode_frame(Frame{}).substr(0, 4);
  write_all(busy.get(), partial.data(), partial.size(), 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const Fd queued = connect_unix(options.socket_path, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Budget of 250 ms with a 40 ms hint: backoff attempt 0 waits in
  // [40, 80), attempt 1 in [80, 160) (exponential from the hint, jitter
  // factor < 2), so both sleeps always fit (< 240 ms spent) and the
  // third wait (>= 160 ms) always busts the budget — the OVERLOADED
  // error (carried on a request-id-0 frame, since the server never read
  // the request) surfaces as a RemoteError with the hint attached.
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.overload_retry_budget_ms = 250;
  copts.backoff_ms = 1;  // below the hint, so the server's 40 ms is the floor
  Client client(copts);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.ping();
    FAIL() << "expected OVERLOADED to surface after the budget is spent";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_EQ(e.retry_after_ms(), 40u);
  }
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_GE(waited, 120) << "client must honor the server's retry-after hint as a floor";
  EXPECT_GE(server.stats().rejected_overload, 3u);

  // A zero budget disables overload retries: the reject surfaces
  // immediately.
  ClientOptions no_retry = copts;
  no_retry.overload_retry_budget_ms = 0;
  Client impatient(no_retry);
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_THROW(impatient.ping(), RemoteError);
  const auto fast = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t1)
                        .count();
  EXPECT_LT(fast, 40);
  server.stop();
}

TEST(ServeServer, StopIsIdempotentAndRestartsCleanly) {
  ServerOptions options;
  options.socket_path = temp_socket("restart");
  options.jobs = 1;
  {
    Server server(shared_store(), options);
    server.start();
    EXPECT_TRUE(server.running());
    server.stop();
    server.stop();  // idempotent
    EXPECT_FALSE(server.running());
  }
  // The socket path is released: a second server binds the same path.
  Server again(shared_store(), options);
  again.start();
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  client.ping();
  again.stop();
}

// ---------------------------------------------------------------------------
// Event-loop regression tests (PR6)

TEST(ServeNet, NonblockingFcntlIsChecked) {
  // Regression: fcntl results used to be ignored. A bad fd must raise a
  // structured Error naming the call site, not silently hand back a
  // blocking fd that would stall the reactor.
  try {
    set_nonblocking(-1, true, "bogus fd");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus fd"), std::string::npos);
  }

  // make_pipe promises non-blocking ends — verify the promise is real.
  const Pipe pipe = make_pipe();
  const int rd_flags = ::fcntl(pipe.rd.get(), F_GETFL);
  const int wr_flags = ::fcntl(pipe.wr.get(), F_GETFL);
  ASSERT_GE(rd_flags, 0);
  ASSERT_GE(wr_flags, 0);
  EXPECT_NE(rd_flags & O_NONBLOCK, 0);
  EXPECT_NE(wr_flags & O_NONBLOCK, 0);
}

TEST(ServeServer, StopIsPromptUnderChattyKeepAliveClient) {
  // Regression for the shutdown-starvation bug: the old loop re-checked
  // the stop signal only when no connection was readable, so one chatty
  // keep-alive client could delay stop() indefinitely. The reactor now
  // checks the stop signal before any connection work and bounds the
  // drain by idle_timeout_ms.
  ServerOptions options;
  options.socket_path = temp_socket("chattystop");
  options.jobs = 1;
  options.idle_timeout_ms = 400;  // bounds the shutdown drain
  Server server(shared_store(), options);
  server.start();

  std::atomic<bool> done{false};
  std::thread chatty([&] {
    try {
      const Fd conn = connect_unix(options.socket_path, 2000);
      std::uint64_t id = 1;
      while (!done.load()) {
        Frame ping;
        ping.type = MsgType::kPing;
        ping.request_id = id++;
        serve::write_frame(conn.get(), ping, 1000);
        if (!serve::read_frame(conn.get(), 1000).has_value()) break;  // server hung up
      }
    } catch (const Error&) {
      // Connection torn down mid-ping by stop(): expected.
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // pings flowing

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  done.store(true);
  chatty.join();
  EXPECT_GT(server.stats().pings, 0u) << "the client must have been genuinely chatty";
  EXPECT_LT(stop_ms, 1500)
      << "stop() must not be starved by a connection that is always readable";
}

TEST(ServeServer, QueueDepthGaugeDrainsToZero) {
  // Regression for the stale-gauge bug: depth used to be published only
  // when connections queued up, never when they drained, so the gauge
  // read high forever after any burst.
  ServerOptions options;
  options.socket_path = temp_socket("gauge");
  options.jobs = 1;
  Server server(shared_store(), options);
  server.start();

  const auto wait_until = [&](auto pred) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  };

  {
    const Fd a = connect_unix(options.socket_path, 2000);
    const Fd b = connect_unix(options.socket_path, 2000);
    const Fd c = connect_unix(options.socket_path, 2000);
    // Three admitted keep-alive connections over one worker: depth 2.
    EXPECT_TRUE(wait_until([&] { return server.stats().queue_depth == 2u; }))
        << "queue_depth is " << server.stats().queue_depth;
    EXPECT_GE(server.stats().queue_high_water, 2u);
  }
  // Connections closed: the pop side must publish shrinkage too.
  EXPECT_TRUE(wait_until([&] { return server.stats().queue_depth == 0u; }))
      << "gauge stuck at " << server.stats().queue_depth << " after drain";
  EXPECT_GE(server.stats().queue_high_water, 2u) << "high water stays monotonic";
  server.stop();
}

TEST(ServeBatch, CoalescedAnswersMatchPerRequestPredictions) {
  // The cross-connection coalescing path must be byte-identical to
  // answering each request alone, and per-request failures must settle
  // their own slot without disturbing batchmates.
  const PolicyProfile policy;
  std::vector<serve::PredictJob> jobs;
  std::vector<std::string> expected;
  for (unsigned seed : {11u, 12u, 13u}) {
    const Technology tech = technology_28soi();
    const Cell cell = build_function("NAND2", tech, {1, StructureVariant::kWide}, seed).cell;
    const std::string netlist = SpiceWriter().to_string(cell);
    const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
    const CaModel model =
        shared_store().predict(parsed.front(), canonicalize(parsed.front()),
                               policy.policy_for(parsed.front().num_inputs()), SimConfig{});
    expected.push_back(ca_model_to_string(model, parsed.front()));

    serve::PredictJob job;
    job.conn_id = 1;
    job.seq = jobs.size();
    job.request_id = jobs.size() + 1;
    job.netlist = netlist;
    jobs.push_back(std::move(job));
  }
  // A routing miss and a parse failure ride in the middle of the batch.
  serve::PredictJob inv;
  inv.conn_id = 2;
  inv.seq = 99;
  inv.request_id = 100;
  inv.netlist = SpiceWriter().to_string(build_function("INV", technology_28soi()).cell);
  jobs.insert(jobs.begin() + 1, std::move(inv));
  serve::PredictJob garbage;
  garbage.conn_id = 3;
  garbage.request_id = 200;
  garbage.netlist = "this is not spice";
  jobs.insert(jobs.begin() + 3, std::move(garbage));

  const std::vector<serve::PredictOutcome> outcomes =
      serve::answer_predict_batch(shared_store(), policy, jobs);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0].kind, serve::PredictOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[0].response.payload, expected[0]);
  EXPECT_EQ(outcomes[1].kind, serve::PredictOutcome::Kind::kNoGroup);
  EXPECT_EQ(decode_error(outcomes[1].response.payload).code, ErrorCode::kNoGroup);
  EXPECT_EQ(outcomes[2].kind, serve::PredictOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[2].response.payload, expected[1]);
  EXPECT_EQ(outcomes[3].kind, serve::PredictOutcome::Kind::kError);
  EXPECT_EQ(outcomes[4].kind, serve::PredictOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[4].response.payload, expected[2]);
  // conn/seq routing metadata is echoed untouched.
  EXPECT_EQ(outcomes[1].conn_id, 2u);
  EXPECT_EQ(outcomes[1].seq, 99u);
}

TEST(ServeServer, PipelinedBatchIsOrderedAndByteIdentical) {
  // End to end through the reactor: many requests in flight on one
  // connection, responses in request order, every payload byte-identical
  // to the in-process prediction, per-request errors in place.
  const PolicyProfile policy;
  std::vector<std::string> netlists;
  std::vector<std::string> expected;  // empty string = expect NO_GROUP
  for (unsigned seed : {21u, 22u, 23u}) {
    const Technology tech = technology_28soi();
    const Cell cell = build_function("NAND2", tech, {1, StructureVariant::kWide}, seed).cell;
    const std::string netlist = SpiceWriter().to_string(cell);
    const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
    const CaModel model =
        shared_store().predict(parsed.front(), canonicalize(parsed.front()),
                               policy.policy_for(parsed.front().num_inputs()), SimConfig{});
    netlists.push_back(netlist);
    expected.push_back(ca_model_to_string(model, parsed.front()));
  }
  netlists.insert(netlists.begin() + 1,
                  SpiceWriter().to_string(build_function("INV", technology_28soi()).cell));
  expected.insert(expected.begin() + 1, "");

  ServerOptions options;
  options.socket_path = temp_socket("pipeline");
  options.jobs = 1;  // every request funnels through one compute worker
  Server server(shared_store(), options);
  server.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  Client client(copts);
  const std::vector<serve::BatchResult> results = client.predict_cells(netlists, 8);
  ASSERT_EQ(results.size(), netlists.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (expected[i].empty()) {
      ASSERT_FALSE(results[i].ok()) << "request " << i;
      EXPECT_EQ(results[i].error->code, ErrorCode::kNoGroup);
    } else {
      ASSERT_TRUE(results[i].ok()) << "request " << i;
      EXPECT_EQ(results[i].payload, expected[i]) << "request " << i;
    }
  }

  const serve::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.requests_ok, 3u);
  EXPECT_EQ(stats.no_group, 1u);
  EXPECT_EQ(stats.requests_error, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, 4u) << "each request computed at most once";
  // The compute backlog gauge drains back to 0 (fed on both sides).
  EXPECT_EQ(obs::Registry::global().gauge("caml_serve_predict_backlog").value(), 0);
  server.stop();
}

TEST(ServeProtocol, PredictPayloadVersionSplit) {
  // v1: the payload IS the netlist, untouched.
  const serve::PredictPayload v1 =
      serve::split_predict_payload(serve::kProtocolVersion, "* bare netlist");
  EXPECT_EQ(v1.deadline_ms, 0u);
  EXPECT_EQ(v1.netlist, "* bare netlist");

  // v2: deadline prefix + netlist round-trips through encode/split.
  const std::string wire = serve::encode_predict_payload(1500, "* v2 netlist");
  const serve::PredictPayload v2 =
      serve::split_predict_payload(serve::kProtocolVersionDeadline, wire);
  EXPECT_EQ(v2.deadline_ms, 1500u);
  EXPECT_EQ(v2.netlist, "* v2 netlist");

  // A v2 payload shorter than its fixed field is malformed, not a
  // zero-deadline request.
  EXPECT_THROW(serve::split_predict_payload(serve::kProtocolVersionDeadline, "abc"),
               ProtocolError);
}

TEST(ServeClient, BackoffDecorrelatesAcrossSeeds) {
  // The jittered overload backoff is a pure function: reproducible per
  // seed, floored by the server hint, bounded by 2x the capped
  // exponential, and decorrelated across seeds so a fleet of restarted
  // clients does not re-stampede the server in lockstep.
  const int hint = 40, base = 100, cap = 2000;
  std::vector<std::vector<int>> schedules;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<int> waits;
    for (int attempt = 0; attempt < 4; ++attempt) {
      const int w = serve::overload_backoff_ms(seed, attempt, hint, base, cap);
      // Deterministic: same (seed, attempt) -> same wait.
      EXPECT_EQ(w, serve::overload_backoff_ms(seed, attempt, hint, base, cap));
      // Floor: never earlier than the server asked; jitter only stretches.
      EXPECT_GE(w, std::max(hint, base)) << "seed " << seed << " attempt " << attempt;
      // Bound: capped exponential, at most doubled by jitter.
      EXPECT_LT(w, 2 * cap) << "seed " << seed << " attempt " << attempt;
      waits.push_back(w);
    }
    // Exponential shape survives the jitter: attempt k+1's pre-jitter
    // wait doubles, and jitter is < 2x, so the schedule grows until cap.
    EXPECT_GT(waits[1], waits[0] / 2);
    schedules.push_back(std::move(waits));
  }
  // Decorrelation: 8 seeds must not all produce the identical schedule.
  int distinct_from_first = 0;
  for (std::size_t i = 1; i < schedules.size(); ++i) {
    if (schedules[i] != schedules[0]) ++distinct_from_first;
  }
  EXPECT_GE(distinct_from_first, 6) << "jitter failed to spread the fleet";
}

TEST(ServeServer, DeadlineExpiredIsShedWithoutCompute) {
  // A v2 request whose 1 ms deadline expires while queued behind a slow
  // batch is answered DEADLINE_EXCEEDED and never reaches the compute
  // plane — the shed counters prove no forest work was spent on it.
  ServerOptions options;
  options.socket_path = temp_socket("deadline");
  options.jobs = 1;       // one worker: FIFO drain order is deterministic
  options.max_batch = 1;  // blocker and deadline job in separate batches
  Server server(shared_store(), options);
  server.start();

  const std::string netlist = SpiceWriter().to_string(make_target_nand2());
  const Fd conn = connect_unix(options.socket_path, 2000);

  // Pipeline five frames on one connection: four v1 blockers (their
  // serial compute keeps the single worker busy far past 1 ms) and a v2
  // request carrying a 1 ms deadline. The reactor decodes in order, so
  // the deadline job waits in the queue while every blocker computes.
  constexpr std::uint64_t kBlockers = 4;
  for (std::uint64_t id = 1; id <= kBlockers; ++id) {
    Frame blocker;
    blocker.type = MsgType::kPredictCell;
    blocker.request_id = id;
    blocker.payload = netlist;
    serve::write_frame(conn.get(), blocker, 2000);
  }
  Frame doomed;
  doomed.version = serve::kProtocolVersionDeadline;
  doomed.type = MsgType::kPredictCell;
  doomed.request_id = kBlockers + 1;
  doomed.payload = serve::encode_predict_payload(1, netlist);
  serve::write_frame(conn.get(), doomed, 2000);

  for (std::uint64_t id = 1; id <= kBlockers; ++id) {
    const std::optional<Frame> response = serve::read_frame(conn.get(), 30000);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->type, MsgType::kPredictOk);
    EXPECT_EQ(response->request_id, id);
  }
  const std::optional<Frame> shed = serve::read_frame(conn.get(), 30000);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->request_id, kBlockers + 1);
  ASSERT_EQ(shed->type, MsgType::kError);
  EXPECT_EQ(decode_error(shed->payload).code, ErrorCode::kDeadlineExceeded);

  const serve::StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.shed_expired, 1u);
  EXPECT_EQ(stats.requests_ok, kBlockers);
  EXPECT_EQ(stats.cells_predicted, kBlockers)
      << "the shed request must not consume compute";
  server.stop();
}

TEST(ServeServer, SojournOverTargetShedsBeforeQueueing) {
  // Latency-signal admission: with a 1 ms sojourn target and a queue
  // backed up behind one worker, the measured p99 sojourn blows past the
  // target and later arrivals are shed kOverloaded before queueing.
  ServerOptions options;
  options.socket_path = temp_socket("sojourn");
  options.jobs = 1;
  options.max_batch = 1;          // every job is its own batch -> sojourns pile up
  options.sojourn_target_ms = 1;  // any real backlog exceeds this
  Server server(shared_store(), options);
  server.start();

  const std::string netlist = SpiceWriter().to_string(make_target_nand2());
  const Fd conn = connect_unix(options.socket_path, 2000);
  // 12 pipelined predicts: jobs queue behind the single worker, so the
  // sojourn window (needs >= 8 samples) fills with multi-ms sojourns.
  for (std::uint64_t id = 1; id <= 12; ++id) {
    Frame request;
    request.type = MsgType::kPredictCell;
    request.request_id = id;
    request.payload = netlist;
    serve::write_frame(conn.get(), request, 2000);
  }
  std::uint64_t sheds_inline = 0;
  for (std::uint64_t id = 1; id <= 12; ++id) {
    const std::optional<Frame> response = serve::read_frame(conn.get(), 30000);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->request_id, id);
    if (response->type == MsgType::kError) {
      // Later arrivals in the pipeline may already be shed by the
      // policy once the window has its 8 samples — also a pass.
      EXPECT_EQ(decode_error(response->payload).code, ErrorCode::kOverloaded);
      ++sheds_inline;
    } else {
      EXPECT_EQ(response->type, MsgType::kPredictOk);
    }
  }

  if (sheds_inline == 0) {
    // The window is full of over-target sojourns: the next arrival must
    // be shed at admission. A zero retry budget surfaces it immediately.
    ClientOptions copts;
    copts.socket_path = options.socket_path;
    copts.overload_retry_budget_ms = 0;
    Client client(copts);
    try {
      client.predict_cell(netlist);
      FAIL() << "expected the sojourn policy to shed this request";
    } catch (const RemoteError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    }
  }
  EXPECT_GE(server.stats().shed_overload, 1u);
  server.stop();
}

}  // namespace
}  // namespace caml
