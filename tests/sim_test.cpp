#include <gtest/gtest.h>

#include "libgen/builder.hpp"
#include "libgen/catalog.hpp"
#include "sim/evaluator.hpp"
#include "sim/switch_sim.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace caml {
namespace {

using testing::make_fig5_cell;
using testing::make_nand2;
using testing::make_nor2;

TEST(SwitchSim, Nand2TruthTable) {
  const Cell cell = make_nand2();
  SwitchSim sim(cell);
  const Sig expected[] = {Sig::kOne, Sig::kOne, Sig::kOne, Sig::kZero};
  for (InputPattern p = 0; p < 4; ++p) {
    sim.reset();
    EXPECT_EQ(sim.apply(p), expected[p]) << "pattern " << p;
  }
}

TEST(SwitchSim, Nor2TruthTable) {
  const Cell cell = make_nor2();
  SwitchSim sim(cell);
  for (InputPattern p = 0; p < 4; ++p) {
    sim.reset();
    EXPECT_EQ(sim.apply(p), p == 0 ? Sig::kOne : Sig::kZero);
  }
}

TEST(SwitchSim, InternalNetValues) {
  const Cell cell = make_nand2();
  SwitchSim sim(cell);
  sim.reset();
  sim.apply(0b11);  // A=B=1: stack conducts, net0 pulled low
  const NetId net0 = *cell.find_net("net0");
  EXPECT_EQ(sim.net_value(net0), Sig::kZero);
  EXPECT_EQ(sim.net_value(cell.vdd()), Sig::kOne);
  EXPECT_EQ(sim.net_value(cell.vss()), Sig::kZero);
}

TEST(SwitchSim, FloatingInternalNetIsZThenRetains) {
  const Cell cell = make_nand2();
  SwitchSim sim(cell);
  sim.reset();
  sim.apply(0b00);  // both NMOS off: net0 floats, never driven
  const NetId net0 = *cell.find_net("net0");
  EXPECT_EQ(sim.net_value(net0), Sig::kZ);
  // Drive the stack once: net0 becomes 0; then float it again: the
  // charge is retained.
  sim.apply(0b11);
  EXPECT_EQ(sim.net_value(net0), Sig::kZero);
  sim.apply(0b00);
  EXPECT_EQ(sim.net_value(net0), Sig::kZero);  // retained charge
}

TEST(SwitchSim, MultiStageCellSettles) {
  const Cell cell = make_fig5_cell();
  SwitchSim sim(cell);
  // Z = (A & (B|C)) | D (the inverter undoes the complex stage's
  // inversion).
  for (InputPattern p = 0; p < 16; ++p) {
    sim.reset();
    const bool a = p & 1, b = p & 2, c = p & 4, d = p & 8;
    const bool expected = (a && (b || c)) || d;
    EXPECT_EQ(sim.apply(p), expected ? Sig::kOne : Sig::kZero) << "pattern " << p;
  }
}

TEST(SwitchSim, TwoPatternRunMatchesFinalPattern) {
  const Cell cell = make_nand2();
  SwitchSim sim(cell);
  const Sig out = sim.run(Stimulus::parse("R1"));  // A: 0->1, B=1
  EXPECT_EQ(out, Sig::kZero);
  EXPECT_FALSE(sim.last_solve_oscillated());
}

TEST(SwitchSim, DeviceStrengthScalesWithWidth) {
  SimConfig config;
  Transistor narrow;
  narrow.width_um = config.unit_width_um;
  narrow.length_um = 0.03;
  Transistor wide = narrow;
  wide.width_um = config.unit_width_um * 4;
  EXPECT_GT(config.device_strength(wide), config.device_strength(narrow));
  // PMOS penalized by mobility.
  Transistor pmos = narrow;
  pmos.type = MosType::kPmos;
  EXPECT_LE(config.device_strength(pmos), config.device_strength(narrow));
}

TEST(SwitchSim, StrengthClampedToRange) {
  SimConfig config;
  Transistor tiny;
  tiny.width_um = 1e-4;
  tiny.length_um = 0.03;
  Transistor huge;
  huge.width_um = 1e4;
  huge.length_um = 0.03;
  EXPECT_EQ(config.device_strength(tiny), config.min_strength);
  EXPECT_EQ(config.device_strength(huge), config.max_strength);
}

TEST(SwitchSim, GateDrainShortFeedbackContained) {
  // An inverter whose output is shorted to its input through an
  // always-on bridge: a genuine feedback loop. The simulator must
  // terminate and report a value (X on the fighting net is acceptable).
  Cell cell("INVLOOP");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  const NetId vdd = cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  const NetId w = cell.add_net("w", NetKind::kInternal);
  cell.add_transistor({"MN", MosType::kNmos, w, a, vss, vss, 0.4, 0.03});
  cell.add_transistor({"MP", MosType::kPmos, w, a, vdd, vdd, 0.8, 0.03});
  // Second inverter from w to Z so the cell has a proper output.
  cell.add_transistor({"MN2", MosType::kNmos, z, w, vss, vss, 0.4, 0.03});
  cell.add_transistor({"MP2", MosType::kPmos, z, w, vdd, vdd, 0.8, 0.03});
  // Feedback bridge: Z shorted back onto the first stage input net...
  // realized as an always-on NMOS between z and w.
  cell.add_transistor({"MB", MosType::kNmos, z, vdd, w, vss, 0.8, 0.03});
  SwitchSim sim(cell);
  sim.reset();
  EXPECT_NO_THROW(sim.apply(0));
  EXPECT_NO_THROW(sim.apply(1));
}

TEST(Evaluator, GoldenResponsesAndActivity) {
  const Cell cell = make_nand2();
  const auto stimuli = generate_stimuli(2, StimulusPolicy::kExhaustivePairs);
  const GoldenResult golden = simulate_golden(cell, stimuli);
  ASSERT_EQ(golden.responses.size(), stimuli.size());
  ASSERT_EQ(golden.activity.size(), stimuli.size());

  // Static 00: both PMOS active, both NMOS passive.
  EXPECT_EQ(golden.activity[0][0], Wave::kZero);  // N10 (gate A)
  EXPECT_EQ(golden.activity[0][1], Wave::kZero);  // N11 (gate B)
  EXPECT_EQ(golden.activity[0][2], Wave::kOne);   // Px (gate A)
  EXPECT_EQ(golden.activity[0][3], Wave::kOne);   // Py (gate B)

  // Find stimulus "R1": A rises with B=1 -> N10 rises, Px falls.
  for (std::size_t s = 0; s < stimuli.size(); ++s) {
    if (stimuli[s].to_string() == "R1") {
      EXPECT_EQ(golden.activity[s][0], Wave::kRise);
      EXPECT_EQ(golden.activity[s][2], Wave::kFall);
      EXPECT_EQ(golden.responses[s], Sig::kZero);
      EXPECT_EQ(golden.initial_responses[s], Sig::kOne);
    }
  }
}

TEST(Evaluator, TruthTableHelper) {
  EXPECT_EQ(truth_table(make_nand2()), 0b0111u);
  EXPECT_EQ(truth_table(make_nor2()), 0b0001u);
}

TEST(Evaluator, CatalogCellsMatchExpectedTruthTables) {
  // Every catalog function builds to a cell whose switch-level truth
  // table equals the function's logical truth table, in every
  // technology. This is the key validation of the library generator +
  // simulator pair.
  for (const Technology& tech : default_technologies()) {
    Rng rng(tech.seed + 99);
    for (const CellFunction& f : function_catalog()) {
      Rng cell_rng = rng.fork();
      const Cell cell = build_cell(f, tech, {1, StructureVariant::kWide}, {"", 1.0},
                                   f.name + "_tt", cell_rng);
      EXPECT_EQ(truth_table(cell, tech.sim), f.truth_table())
          << f.name << " in " << tech.name;
    }
  }
}

TEST(Evaluator, DriveVariantsPreserveTruthTables) {
  const Technology tech = technology_28soi();
  Rng rng(5);
  for (const char* name : {"NAND2", "NOR3", "AOI22", "XOR2", "MUX2I"}) {
    const CellFunction& f = find_function(name);
    for (const DriveSpec drive : {DriveSpec{2, StructureVariant::kMerged},
                                  DriveSpec{2, StructureVariant::kSplit},
                                  DriveSpec{4, StructureVariant::kWide}}) {
      Rng cell_rng = rng.fork();
      const Cell cell = build_cell(f, tech, drive, {"", 1.0}, std::string(name) + "_dv", cell_rng);
      EXPECT_EQ(truth_table(cell, tech.sim), f.truth_table())
          << name << " drive " << drive.drive << variant_suffix(drive.variant);
    }
  }
}

TEST(Evaluator, SimulateResponsesAllowsNonBinary) {
  // A cell with a floating output for some input: NMOS-only "half
  // inverter" drives Z only when A=1.
  Cell cell("HALF");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  cell.add_transistor({"MN", MosType::kNmos, z, a, vss, vss, 0.4, 0.03});
  const auto stimuli = generate_stimuli(1, StimulusPolicy::kStaticOnly);
  const auto responses = simulate_responses(cell, stimuli);
  EXPECT_EQ(responses[0], Sig::kZ);    // A=0: Z floats
  EXPECT_EQ(responses[1], Sig::kZero); // A=1: pulled low
  // The golden evaluator must reject this cell.
  EXPECT_THROW(simulate_golden(cell, stimuli), Error);
}

}  // namespace
}  // namespace caml
