// Binary model-store tests: text <-> binary round-trip identity,
// byte-identical predictions across text-loaded / materialized /
// mmap-backed stores (serial and parallel), adversarial inputs
// (truncation, flipped bytes, out-of-bounds sections, crafted nodes —
// every case a ParseError naming the file, never UB; run the suite
// under -DCAML_SANITIZE for the memory-safety proof), and serve
// end-to-end on a mapped store.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>

#include "camatrix/canonical.hpp"
#include "camodel/model_io.hpp"
#include "flow/model_store.hpp"
#include "ml/forest_view.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/binary_store.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/sigguard.hpp"
#include "util/thread_pool.hpp"

namespace caml {
namespace {

namespace fs = std::filesystem;

using store::is_binary_store_file;
using store::MappedModelStore;
using store::open_model_store;
using store::write_binary_store_file;
using testing::build_function;
using testing::characterize;

std::string temp_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("caml_store_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

/// Two-group store (NAND2 and NAND3), trained once for the whole file.
const GroupModelStore& shared_store() {
  static const GroupModelStore store = [] {
    const Technology tech = technology_28soi();
    std::vector<CharacterizedCell> training;
    training.push_back(
        characterize(build_function("NAND2", tech, {1, StructureVariant::kWide}, 1), tech));
    training.push_back(
        characterize(build_function("NAND3", tech, {1, StructureVariant::kWide}, 2), tech));
    MlOptions options;
    options.forest.num_trees = 8;
    return GroupModelStore::train(training, options);
  }();
  return store;
}

/// A valid binary store file on disk, written once.
const std::string& shared_binary_path() {
  static const std::string path = [] {
    const std::string p = temp_dir("shared") + "/models.bin.caml";
    write_binary_store_file(p, shared_store());
    return p;
  }();
  return path;
}

/// Deterministic pseudo-random feature rows in the small-int domain the
/// trees split on — enough to hit many leaves of every tree.
std::vector<std::int8_t> make_rows(std::size_t n, std::size_t features) {
  std::vector<std::int8_t> rows(n * features);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::int8_t& v : rows) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = static_cast<std::int8_t>(static_cast<int>(x % 3) - 1);  // {-1, 0, 1}
  }
  return rows;
}

/// Hexfloat rendering of per-row probabilities: any FP difference, down
/// to the last ulp, changes these bytes.
std::string hexfloat_probas(const std::vector<double>& probas) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const double p : probas) os << p << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// Round-trip identity

TEST(BinaryStore, TextBinaryTextRoundTripIsByteIdentical) {
  const std::string dir = temp_dir("roundtrip");
  const std::string text1 = dir + "/models.caml";
  const std::string binary = dir + "/models.bin.caml";
  const std::string text2 = dir + "/models2.caml";

  shared_store().save_file(text1);
  write_binary_store_file(binary, GroupModelStore::load_file(text1));
  ASSERT_TRUE(is_binary_store_file(binary));
  ASSERT_FALSE(is_binary_store_file(text1));
  MappedModelStore::open(binary).materialize().save_file(text2);

  EXPECT_EQ(slurp(text1), slurp(text2))
      << "text -> binary -> text must be byte-identical";
}

TEST(BinaryStore, MappedStoreReportsSections) {
  const MappedModelStore mapped = MappedModelStore::open(shared_binary_path());
  ASSERT_EQ(mapped.num_groups(), shared_store().num_groups());
  EXPECT_EQ(mapped.bytes_mapped(), fs::file_size(shared_binary_path()));
  ASSERT_EQ(mapped.group_infos().size(), mapped.num_groups());
  for (const MappedModelStore::GroupInfo& info : mapped.group_infos()) {
    EXPECT_EQ(info.num_trees, 8u);
    const RandomForest* forest = shared_store().forest_for(info.key);
    ASSERT_NE(forest, nullptr);
    EXPECT_EQ(info.num_features, forest->num_features());
  }
  // kMapOnly opens the same file without the O(payload) checks.
  EXPECT_EQ(MappedModelStore::open(shared_binary_path(), MappedModelStore::Verify::kMapOnly)
                .num_groups(),
            mapped.num_groups());
}

// ---------------------------------------------------------------------------
// Prediction identity

TEST(BinaryStore, HexfloatProbasIdenticalAcrossAllStoreBackends) {
  const MappedModelStore mapped = MappedModelStore::open(shared_binary_path());
  const GroupModelStore materialized = mapped.materialize();
  for (const GroupKey& key : shared_store().group_keys()) {
    const RandomForest* trained = shared_store().forest_for(key);
    ASSERT_NE(trained, nullptr);
    const std::size_t features = trained->num_features();
    const std::vector<std::int8_t> rows = make_rows(257, features);
    const std::size_t n = rows.size() / features;

    const auto* view = dynamic_cast<const MappedForest*>(mapped.classifier_for(key));
    ASSERT_NE(view, nullptr);
    const auto* rebuilt =
        dynamic_cast<const RandomForest*>(materialized.classifier_for(key));
    ASSERT_NE(rebuilt, nullptr);

    const std::string expected =
        hexfloat_probas(trained->predict_proba_batch(rows.data(), n, features));
    EXPECT_EQ(hexfloat_probas(view->predict_proba_batch(rows.data(), n, features)),
              expected)
        << "mmap-backed probabilities must match the trained forest to the last bit";
    EXPECT_EQ(hexfloat_probas(rebuilt->predict_proba_batch(rows.data(), n, features)),
              expected)
        << "materialized probabilities must match the trained forest to the last bit";
    // Per-row entry point agrees with the batched one.
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(view->predict_proba(rows.data() + r * features),
                trained->predict_proba(rows.data() + r * features));
    }
  }
}

TEST(BinaryStore, HexfloatProbaAndMarginParityAcrossJobCounts) {
  // predict_proba_batch and predict_margin_batch must be bit-identical
  // between the trained forest and the mapped view, for any sharding of
  // the rows across worker threads — the property the active-learning
  // scorer leans on for jobs-independent acquisition order.
  const MappedModelStore mapped = MappedModelStore::open(shared_binary_path());
  for (const GroupKey& key : shared_store().group_keys()) {
    const RandomForest* trained = shared_store().forest_for(key);
    ASSERT_NE(trained, nullptr);
    const auto* view = dynamic_cast<const MappedForest*>(mapped.classifier_for(key));
    ASSERT_NE(view, nullptr);
    const std::size_t features = trained->num_features();
    const std::vector<std::int8_t> rows = make_rows(64, features);
    const std::size_t n = rows.size() / features;

    // One row index per work item: jobs=4 classifies each row in its own
    // batch on a pool worker, jobs=1 inline — both must reproduce the
    // single 64-row batch byte for byte.
    std::vector<std::size_t> indices(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = i;
    const auto sharded = [&](const Classifier& c, std::size_t jobs,
                             auto member) -> std::string {
      const std::vector<std::vector<double>> per_row =
          parallel_map(indices, jobs, [&](const std::size_t& r) {
            return member(c, rows.data() + r * features);
          });
      std::vector<double> flat;
      for (const std::vector<double>& v : per_row) flat.push_back(v.at(0));
      return hexfloat_probas(flat);
    };
    const auto proba_one = [](const Classifier& c, const std::int8_t* row) {
      return dynamic_cast<const RandomForest*>(&c) != nullptr
                 ? static_cast<const RandomForest&>(c).predict_proba_batch(row, 1, 0)
                 : static_cast<const MappedForest&>(c).predict_proba_batch(row, 1, 0);
    };
    const auto margin_one = [](const Classifier& c, const std::int8_t* row) {
      return c.predict_margin_batch(row, 1, 0);
    };

    const std::string probas =
        hexfloat_probas(trained->predict_proba_batch(rows.data(), n, features));
    const std::string margins =
        hexfloat_probas(trained->predict_margin_batch(rows.data(), n, features));
    EXPECT_EQ(hexfloat_probas(view->predict_proba_batch(rows.data(), n, features)), probas)
        << "mapped probabilities must match the trained forest to the last bit";
    EXPECT_EQ(hexfloat_probas(view->predict_margin_batch(rows.data(), n, features)), margins)
        << "mapped vote margins must match the trained forest to the last bit";
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      EXPECT_EQ(sharded(*trained, jobs, proba_one), probas) << "jobs=" << jobs;
      EXPECT_EQ(sharded(*view, jobs, proba_one), probas) << "jobs=" << jobs;
      EXPECT_EQ(sharded(*trained, jobs, margin_one), margins) << "jobs=" << jobs;
      EXPECT_EQ(sharded(*view, jobs, margin_one), margins) << "jobs=" << jobs;
    }
  }
}

TEST(BinaryStore, PredictedModelsIdenticalAcrossBackendsAndJobCounts) {
  const std::shared_ptr<const ModelStore> opened = open_model_store(shared_binary_path());
  ASSERT_NE(dynamic_cast<const MappedModelStore*>(opened.get()), nullptr)
      << "open_model_store must pick the mmap path for a binary store";

  const Technology tech = technology_28soi();
  std::vector<Cell> targets;
  targets.push_back(build_function("NAND2", tech, {1, StructureVariant::kWide}, 9).cell);
  targets.push_back(build_function("NAND3", tech, {1, StructureVariant::kWide}, 10).cell);
  targets.push_back(build_function("NAND2", tech, {1, StructureVariant::kWide}, 11).cell);

  const auto predict_all = [&](const ModelStore& s, std::size_t jobs) {
    return parallel_map(targets, jobs, [&](const Cell& cell) {
      const CanonicalCell canon = canonicalize(cell);
      const StimulusPolicy policy = cell.num_inputs() <= 4
                                        ? StimulusPolicy::kExhaustivePairs
                                        : StimulusPolicy::kSingleInputChange;
      return ca_model_to_string(s.predict(cell, canon, policy, SimConfig{}), cell);
    });
  };

  const std::vector<std::string> expected = predict_all(shared_store(), 1);
  EXPECT_EQ(predict_all(*opened, 1), expected);
  EXPECT_EQ(predict_all(*opened, 4), expected);
  EXPECT_EQ(predict_all(MappedModelStore::open(shared_binary_path()).materialize(), 4),
            expected);
}

// ---------------------------------------------------------------------------
// Adversarial inputs

/// Expects MappedModelStore::open (both verify modes where applicable)
/// to reject `path` with a ParseError naming the file.
void expect_rejected(const std::string& path, const char* what_case) {
  try {
    MappedModelStore::open(path);
    FAIL() << what_case << ": corrupt store was accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << what_case << ": error must name the file: " << e.what();
  } catch (const Error& e) {
    // Unmappable (e.g. empty) files surface as plain Errors naming the
    // file — also a structured rejection.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(BinaryStore, TruncationSweepAlwaysRejectsStructurally) {
  const std::string bytes = slurp(shared_binary_path());
  const std::string dir = temp_dir("truncate");
  const std::string victim = dir + "/truncated.bin.caml";
  // Cut at the interesting boundaries plus a spread through the body.
  std::vector<std::size_t> cuts = {0, 1, 5, 20, 40};
  const std::size_t header_end = bytes.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  for (const std::size_t d : {0, 1, 32, 63, 64, 65, 96, 127, 128}) {
    if (header_end + 1 + d < bytes.size()) cuts.push_back(header_end + 1 + d);
  }
  for (std::size_t c = 0; c < bytes.size() - 1; c += bytes.size() / 37 + 1) cuts.push_back(c);
  cuts.push_back(bytes.size() - 1);
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    spit(victim, bytes.substr(0, cut));
    expect_rejected(victim, "truncation");
  }
}

TEST(BinaryStore, FlippedByteSweepAlwaysRejects) {
  const std::string bytes = slurp(shared_binary_path());
  const std::string dir = temp_dir("flip");
  const std::string victim = dir + "/flipped.bin.caml";
  // Every byte of the container header + binary header + index, then a
  // stride through the data section (CRC-32 catches any single flip; the
  // sweep proves the *reporting* path is a ParseError, not UB).
  std::vector<std::size_t> offsets;
  const std::size_t dense_end = std::min<std::size_t>(bytes.size(), 256);
  for (std::size_t i = 0; i < dense_end; ++i) offsets.push_back(i);
  for (std::size_t i = dense_end; i < bytes.size(); i += bytes.size() / 53 + 1) {
    offsets.push_back(i);
  }
  offsets.push_back(bytes.size() - 1);
  for (const std::size_t at : offsets) {
    SCOPED_TRACE("flip at=" + std::to_string(at));
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
    spit(victim, mutated);
    expect_rejected(victim, "flipped byte");
  }
}

/// Rebuilds a syntactically consistent container around a mutated binary
/// payload: container CRC, index CRC and data CRC are all recomputed, so
/// only the structural validation can catch the mutation — the
/// adversarial (crafted file) case, not the bit-rot case.
std::string reframe_with_fixed_crcs(std::string payload) {
  using store::kBinHeaderBytes;
  EXPECT_GE(payload.size(), kBinHeaderBytes) << "payload too short to reframe";
  if (payload.size() < kBinHeaderBytes) {
    return io::frame_checksummed(store::kBinaryStoreKind, payload);
  }
  std::uint32_t group_count = 0;
  std::memcpy(&group_count, payload.data() + 24, 4);
  std::uint64_t data_offset = 0;
  std::memcpy(&data_offset, payload.data() + 40, 8);
  const std::uint64_t index_bytes =
      static_cast<std::uint64_t>(group_count) * store::kIndexEntryBytes;
  if (kBinHeaderBytes + index_bytes <= payload.size()) {
    const std::uint32_t index_crc = io::crc32(
        std::string_view(payload).substr(kBinHeaderBytes, index_bytes));
    std::memcpy(payload.data() + 48, &index_crc, 4);
  }
  if (data_offset <= payload.size()) {
    const std::uint32_t data_crc =
        io::crc32(std::string_view(payload).substr(data_offset));
    std::memcpy(payload.data() + 52, &data_crc, 4);
  }
  const std::uint64_t payload_size = payload.size();
  std::memcpy(payload.data() + 16, &payload_size, 8);
  return io::frame_checksummed(store::kBinaryStoreKind, payload);
}

class CraftedStore : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string bytes = slurp(shared_binary_path());
    const std::size_t header_end = bytes.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    payload_ = bytes.substr(header_end + 1);
    dir_ = temp_dir("crafted");
  }

  void expect_crafted_rejected(std::string payload, const char* what_case) {
    const std::string victim = dir_ + "/" + what_case + ".bin.caml";
    spit(victim, reframe_with_fixed_crcs(std::move(payload)));
    expect_rejected(victim, what_case);
  }

  std::string payload_;
  std::string dir_;
};

TEST_F(CraftedStore, RejectsOutOfBoundsAndInconsistentSections) {
  using store::kBinHeaderBytes;

  {  // Index entry: forest_offset pointing far out of bounds.
    std::string p = payload_;
    const std::uint64_t bogus = p.size() + 4096;
    std::memcpy(p.data() + kBinHeaderBytes + 8, &bogus, 8);
    expect_crafted_rejected(std::move(p), "oob_forest_offset");
  }
  {  // Index entry: forest_size running past the payload end.
    std::string p = payload_;
    const std::uint64_t bogus = p.size();
    std::memcpy(p.data() + kBinHeaderBytes + 16, &bogus, 8);
    expect_crafted_rejected(std::move(p), "oob_forest_size");
  }
  {  // Index entry: declared tree count inconsistent with the section.
    std::string p = payload_;
    const std::uint32_t bogus = 200;
    std::memcpy(p.data() + kBinHeaderBytes + 24, &bogus, 4);
    expect_crafted_rejected(std::move(p), "tree_count_mismatch");
  }
  {  // Tree header: node_count inconsistent with the section length.
    std::string p = payload_;
    std::uint64_t data_offset = 0;
    std::memcpy(&data_offset, p.data() + 40, 8);
    std::uint64_t node_count = 0;
    std::memcpy(&node_count, p.data() + data_offset, 8);
    node_count += 7;
    std::memcpy(p.data() + data_offset, &node_count, 8);
    expect_crafted_rejected(std::move(p), "node_count_mismatch");
  }
  {  // Header: data_offset not matching the index extent.
    std::string p = payload_;
    std::uint64_t data_offset = 0;
    std::memcpy(&data_offset, p.data() + 40, 8);
    data_offset += 32;
    std::memcpy(p.data() + 40, &data_offset, 8);
    expect_crafted_rejected(std::move(p), "data_offset_mismatch");
  }
  {  // Header: group count beyond the payload.
    std::string p = payload_;
    const std::uint32_t bogus = 0x00FFFFFF;
    std::memcpy(p.data() + 24, &bogus, 4);
    expect_crafted_rejected(std::move(p), "oob_group_count");
  }
}

TEST_F(CraftedStore, RejectsMalformedNodes) {
  std::uint64_t data_offset = 0;
  std::memcpy(&data_offset, payload_.data() + 40, 8);
  // First tree of the first forest; its nodes start after the header.
  std::uint64_t node_count = 0;
  std::memcpy(&node_count, payload_.data() + data_offset, 8);
  ASSERT_GT(node_count, 1u) << "shared store's first tree is unexpectedly a stump";
  const std::size_t nodes_at = data_offset + store::kTreeHeaderBytes;

  {  // Root's left child index far out of range.
    std::string p = payload_;
    const std::int32_t bogus = static_cast<std::int32_t>(node_count) + 5;
    std::memcpy(p.data() + nodes_at + 0, &bogus, 4);
    expect_crafted_rejected(std::move(p), "child_out_of_range");
  }
  {  // Root's right child pointing backward (cycle).
    std::string p = payload_;
    const std::int32_t bogus = 0;
    std::memcpy(p.data() + nodes_at + 4, &bogus, 4);
    expect_crafted_rejected(std::move(p), "child_cycle");
  }
  {  // Root's feature index beyond the group's feature count.
    std::string p = payload_;
    const std::uint16_t bogus = 0xFFFF;
    std::memcpy(p.data() + nodes_at + 8, &bogus, 2);
    expect_crafted_rejected(std::move(p), "feature_out_of_range");
  }
  {  // Version bump is rejected, not misparsed.
    std::string p = payload_;
    const std::uint32_t v2 = 2;
    std::memcpy(p.data() + 12, &v2, 4);
    expect_crafted_rejected(std::move(p), "future_version");
  }
  {  // Foreign byte order is rejected via the endian tag.
    std::string p = payload_;
    const std::uint32_t swapped = 0x04030201;
    std::memcpy(p.data() + 8, &swapped, 4);
    expect_crafted_rejected(std::move(p), "endian_mismatch");
  }
}

TEST(BinaryStore, RejectsWrongContainerKind) {
  // A perfectly valid *text* store container must not open as binary.
  const std::string dir = temp_dir("kind");
  const std::string text = dir + "/models.caml";
  shared_store().save_file(text);
  EXPECT_FALSE(is_binary_store_file(text));
  expect_rejected(text, "text container as binary");
  // And open_model_store routes it to the text loader instead.
  EXPECT_EQ(open_model_store(text)->num_groups(), shared_store().num_groups());
}

// ---------------------------------------------------------------------------
// Serve end-to-end on a mapped store

std::string temp_socket(const char* tag) {
  return (fs::temp_directory_path() /
          ("caml_store_srv_" + std::to_string(::getpid()) + "_" + tag + ".sock"))
      .string();
}

TEST(BinaryStore, ServeAnswersIdenticallyFromMappedStore) {
  const Technology tech = technology_28soi();
  const Cell target = build_function("NAND2", tech, {1, StructureVariant::kWide}, 9).cell;
  const std::string netlist = SpiceWriter().to_string(target);
  const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
  ASSERT_EQ(parsed.size(), 1u);
  const std::string expected = ca_model_to_string(
      shared_store().predict(parsed.front(), canonicalize(parsed.front()),
                             PolicyProfile{}.policy_for(parsed.front().num_inputs()),
                             SimConfig{}),
      parsed.front());

  serve::ServerOptions options;
  options.socket_path = temp_socket("mapped");
  options.jobs = 2;
  serve::Server server(open_model_store(shared_binary_path()), options);
  server.start();

  serve::ClientOptions copts;
  copts.socket_path = options.socket_path;
  serve::Client client(copts);
  EXPECT_EQ(client.predict_cell(netlist), expected)
      << "daemon on a mapped store must answer byte-identically";

  // Hot reload onto a fresh mapping keeps answers identical; a corrupt
  // replacement never reaches reload() (open throws first), so the old
  // mapping keeps serving — the SIGHUP failure path of `caml serve`.
  server.reload(open_model_store(shared_binary_path()));
  EXPECT_EQ(client.predict_cell(netlist), expected);

  const std::string dir = temp_dir("reload");
  const std::string corrupt = dir + "/corrupt.bin.caml";
  std::string bytes = slurp(shared_binary_path());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  spit(corrupt, bytes);
  EXPECT_THROW(open_model_store(corrupt), ParseError);
  EXPECT_EQ(client.predict_cell(netlist), expected)
      << "failed reload must leave the serving store untouched";

  server.stop();
}

// ---------------------------------------------------------------------------
// Mapping faults: truncation under an active mapping

TEST(BinaryStore, TruncationUnderMappingFaultsStructurally) {
  // The store file shrinks under an active mapping (rotation gone wrong,
  // a partial copy over the live file): healthy() flags the size change,
  // and touching the vanished pages raises SIGBUS which the guard
  // converts into a structured io::MappingFault — never a dead process.
  const std::string dir = temp_dir("sigbus");
  const std::string victim = dir + "/live.bin.caml";
  const std::string pristine = slurp(shared_binary_path());
  ASSERT_GT(pristine.size(), std::size_t{100 * 4096})
      << "store file too small to guarantee pages past the truncation point";
  spit(victim, pristine);

  const MappedModelStore mapped =
      MappedModelStore::open(victim, MappedModelStore::Verify::kMapOnly);
  EXPECT_TRUE(mapped.healthy());

  const GroupKey key = shared_store().group_keys().front();
  const RandomForest* trained = shared_store().forest_for(key);
  ASSERT_NE(trained, nullptr);
  const std::size_t features = trained->num_features();
  const std::vector<std::int8_t> rows = make_rows(64, features);
  const auto* view = dynamic_cast<const MappedForest*>(mapped.classifier_for(key));
  ASSERT_NE(view, nullptr);
  // Baseline: the mapping answers normally before the truncation.
  EXPECT_EQ(view->predict_proba_batch(rows.data(), 64, features).size(), 64u);

  // Shrink the backing file to one page: the node arrays live far past
  // the new EOF, so traversal faults on first touch.
  ASSERT_EQ(::truncate(victim.c_str(), 4096), 0);
  EXPECT_FALSE(mapped.healthy()) << "size revalidation must flag the truncation";
  EXPECT_THROW(view->predict_proba_batch(rows.data(), 64, features), io::MappingFault)
      << "SIGBUS must surface as a structured fault, not kill the process";
}

TEST(BinaryStore, ServerRecoversFromStoreFaultViaRefresh) {
  // End to end: the serving store's backing file is truncated in place.
  // The in-flight request fails INTERNAL (not silently garbage), the
  // server's refresh callback restores + re-opens the file, and the very
  // next request is answered byte-identically — the daemon never dies.
  const std::string dir = temp_dir("refresh");
  const std::string victim = dir + "/live.bin.caml";
  const std::string pristine = slurp(shared_binary_path());
  spit(victim, pristine);

  const Technology tech = technology_28soi();
  const Cell target = build_function("NAND2", tech, {1, StructureVariant::kWide}, 9).cell;
  const std::string netlist = SpiceWriter().to_string(target);
  const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
  const std::string expected = ca_model_to_string(
      shared_store().predict(parsed.front(), canonicalize(parsed.front()),
                             PolicyProfile{}.policy_for(parsed.front().num_inputs()),
                             SimConfig{}),
      parsed.front());

  serve::ServerOptions options;
  options.socket_path = temp_socket("refresh");
  options.jobs = 1;  // one worker: fault -> recovery -> next batch is serial
  serve::Server server(open_model_store(victim), options);
  server.set_store_refresh([victim, pristine]() -> std::shared_ptr<const ModelStore> {
    // Source-of-truth repair: put the pristine bytes back, then re-open.
    std::ofstream os(victim, std::ios::binary | std::ios::trunc);
    os.write(pristine.data(), static_cast<std::streamsize>(pristine.size()));
    os.flush();
    return open_model_store(victim);
  });
  server.start();

  serve::ClientOptions copts;
  copts.socket_path = options.socket_path;
  serve::Client client(copts);
  EXPECT_EQ(client.predict_cell(netlist), expected);

  // Pull the rug: shrink the live file under the serving mapping.
  ASSERT_EQ(::truncate(victim.c_str(), 4096), 0);
  try {
    client.predict_cell(netlist);
    FAIL() << "predict against a faulted mapping must fail INTERNAL";
  } catch (const serve::RemoteError& e) {
    EXPECT_EQ(e.code(), serve::ErrorCode::kInternal) << e.what();
  }

  // Recovery already ran (the worker repairs before publishing the
  // INTERNAL answer): the next request must be answered correctly.
  EXPECT_EQ(client.predict_cell(netlist), expected)
      << "refresh callback must restore byte-identical serving";
  const serve::StatsSnapshot stats = server.stats();
  EXPECT_GE(stats.store_faults, 1u);
  EXPECT_GE(stats.reloads, 1u) << "recovery swaps the fresh store in via reload";
  server.stop();
}

TEST(BinaryStore, ReloadRacesInflightBatchesOnMappedStore) {
  // SIGHUP reload storms while pipelined batches are in flight on a
  // mapped store: every in-flight batch finishes on the snapshot it
  // started with (the old mapping stays alive until its last batch
  // drops the shared_ptr), so every answer stays byte-identical.
  const Technology tech = technology_28soi();
  std::vector<std::string> netlists;
  std::vector<std::string> expected;
  for (unsigned seed : {31u, 32u, 33u, 34u}) {
    const Cell cell = build_function("NAND2", tech, {1, StructureVariant::kWide}, seed).cell;
    const std::string netlist = SpiceWriter().to_string(cell);
    const std::vector<Cell> parsed = SpiceParser().parse_string(netlist);
    expected.push_back(ca_model_to_string(
        shared_store().predict(parsed.front(), canonicalize(parsed.front()),
                               PolicyProfile{}.policy_for(parsed.front().num_inputs()),
                               SimConfig{}),
        parsed.front()));
    netlists.push_back(netlist);
  }
  // 12 requests total, pipelined 8-deep against 2 workers.
  std::vector<std::string> batch;
  std::vector<std::string> want;
  for (int rep = 0; rep < 3; ++rep) {
    batch.insert(batch.end(), netlists.begin(), netlists.end());
    want.insert(want.end(), expected.begin(), expected.end());
  }

  serve::ServerOptions options;
  options.socket_path = temp_socket("reloadrace");
  options.jobs = 2;
  serve::Server server(open_model_store(shared_binary_path()), options);
  server.start();

  // Reload storm: fresh mappings of the same file swap in mid-batch.
  std::atomic<bool> done{false};
  std::thread reloader([&] {
    while (!done.load()) {
      server.reload(open_model_store(shared_binary_path()));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  serve::ClientOptions copts;
  copts.socket_path = options.socket_path;
  serve::Client client(copts);
  const std::vector<serve::BatchResult> results = client.predict_cells(batch, 8);
  done.store(true);
  reloader.join();

  ASSERT_EQ(results.size(), want.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "request " << i;
    EXPECT_EQ(results[i].payload, want[i]) << "request " << i;
  }
  EXPECT_GE(server.stats().reloads, 1u);
  server.stop();
}

}  // namespace
}  // namespace caml
