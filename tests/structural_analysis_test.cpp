#include <gtest/gtest.h>

#include "flow/structural.hpp"
#include "test_support.hpp"

namespace caml {
namespace {

using testing::build_function;
using testing::characterize;

TEST(StructureIndex, IdenticalStructureAcrossTechnologies) {
  // The same function/drive in another technology (different sizing,
  // naming, ordering) is an *identical* structure.
  const Technology soi = technology_28soi();
  const Technology c40 = technology_c40();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NAND2", soi), soi));
  const StructureIndex index(training);

  const CharacterizedCell probe = characterize(build_function("NAND2", c40, {1, StructureVariant::kWide}, 77), c40);
  EXPECT_EQ(index.classify(probe.canonical), StructureMatch::kIdentical);
}

TEST(StructureIndex, Fig6VariantsAreEquivalent) {
  // Training contains the X1 form; the merged/split X2 forms are the
  // paper's Fig. 6 equivalent structures.
  const Technology soi = technology_28soi();
  const Technology c28 = technology_c28();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NOR2", soi), soi));
  const StructureIndex index(training);

  const auto merged = characterize(
      build_function("NOR2", c28, {2, StructureVariant::kMerged}, 5), c28);
  const auto split = characterize(
      build_function("NOR2", c28, {2, StructureVariant::kSplit}, 6), c28);
  EXPECT_EQ(index.classify(merged.canonical), StructureMatch::kEquivalent);
  EXPECT_EQ(index.classify(split.canonical), StructureMatch::kEquivalent);
}

TEST(StructureIndex, MergedMatchesSplitDirectly) {
  // Merged and split realizations of the same drive are equivalent to
  // each other even without the X1 form (the red-net configurations of
  // Fig. 6).
  const Technology soi = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(
      characterize(build_function("NAND3", soi, {2, StructureVariant::kMerged}, 3), soi));
  const StructureIndex index(training);
  const auto split = characterize(
      build_function("NAND3", soi, {2, StructureVariant::kSplit}, 4), soi);
  EXPECT_EQ(index.classify(split.canonical), StructureMatch::kEquivalent);
}

TEST(StructureIndex, NewFunctionIsNew) {
  const Technology soi = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NAND2", soi), soi));
  training.push_back(characterize(build_function("NOR2", soi), soi));
  const StructureIndex index(training);
  const auto xor2 = characterize(build_function("XOR2", soi, {1, StructureVariant::kWide}, 8),
                                 soi);
  EXPECT_EQ(index.classify(xor2.canonical), StructureMatch::kNew);
}

TEST(StructureIndex, FeedbackAddEnrichesIndex) {
  const Technology soi = technology_28soi();
  StructureIndex index;
  const auto cell = characterize(build_function("AOI21", soi), soi);
  EXPECT_EQ(index.classify(cell.canonical), StructureMatch::kNew);
  index.add(cell.canonical);
  EXPECT_EQ(index.classify(cell.canonical), StructureMatch::kIdentical);
  EXPECT_EQ(index.num_full_signatures(), 1u);
}

TEST(StructureIndex, DifferentStackOrderIsDifferentStructure) {
  // NAND3 and AOI21's structures differ even though both have 6
  // transistors and 3 inputs.
  const Technology soi = technology_28soi();
  std::vector<CharacterizedCell> training;
  training.push_back(characterize(build_function("NAND3", soi), soi));
  const StructureIndex index(training);
  const auto aoi = characterize(build_function("AOI21", soi, {1, StructureVariant::kWide}, 9),
                                soi);
  EXPECT_EQ(index.classify(aoi.canonical), StructureMatch::kNew);
}

TEST(StructureMatchName, Strings) {
  EXPECT_STREQ(structure_match_name(StructureMatch::kIdentical), "identical");
  EXPECT_STREQ(structure_match_name(StructureMatch::kEquivalent), "equivalent");
  EXPECT_STREQ(structure_match_name(StructureMatch::kNew), "new");
}

}  // namespace
}  // namespace caml
