#include "test_support.hpp"

namespace caml::testing {

Cell make_nand2() {
  Cell cell("NAND2_FIG4");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId b = cell.add_net("B", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  const NetId vdd = cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  const NetId net0 = cell.add_net("net0", NetKind::kInternal);
  // NMOS stack: Z - N10(A) - net0 - N11(B) - VSS.
  cell.add_transistor({"N10", MosType::kNmos, z, a, net0, vss, 0.4, 0.03});
  cell.add_transistor({"N11", MosType::kNmos, net0, b, vss, vss, 0.4, 0.03});
  // PMOS pair: Px(A), Py(B) both Z - VDD.
  cell.add_transistor({"Px", MosType::kPmos, z, a, vdd, vdd, 0.6, 0.03});
  cell.add_transistor({"Py", MosType::kPmos, z, b, vdd, vdd, 0.6, 0.03});
  cell.validate();
  return cell;
}

Cell make_nor2() {
  Cell cell("NOR2_T");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId b = cell.add_net("B", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  const NetId vdd = cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  const NetId mid = cell.add_net("mid", NetKind::kInternal);
  cell.add_transistor({"MN0", MosType::kNmos, z, a, vss, vss, 0.4, 0.03});
  cell.add_transistor({"MN1", MosType::kNmos, z, b, vss, vss, 0.4, 0.03});
  cell.add_transistor({"MP0", MosType::kPmos, z, a, mid, vdd, 0.8, 0.03});
  cell.add_transistor({"MP1", MosType::kPmos, mid, b, vdd, vdd, 0.8, 0.03});
  cell.validate();
  return cell;
}

Cell make_fig5_cell() {
  Cell cell("FIG5");
  const NetId a = cell.add_net("A", NetKind::kInput);
  const NetId b = cell.add_net("B", NetKind::kInput);
  const NetId c = cell.add_net("C", NetKind::kInput);
  const NetId d = cell.add_net("D", NetKind::kInput);
  const NetId z = cell.add_net("Z", NetKind::kOutput);
  const NetId vdd = cell.add_net("VDD", NetKind::kPower);
  const NetId vss = cell.add_net("VSS", NetKind::kGround);
  const NetId y = cell.add_net("Y", NetKind::kInternal);
  const NetId m = cell.add_net("m", NetKind::kInternal);
  const NetId pm1 = cell.add_net("pm1", NetKind::kInternal);
  const NetId pm2 = cell.add_net("pm2", NetKind::kInternal);
  // NMOS branch driving Y: (N0(A) & (N1(B) | N2(C))) | N3(D).
  cell.add_transistor({"N0", MosType::kNmos, y, a, m, vss, 0.4, 0.03});
  cell.add_transistor({"N1", MosType::kNmos, m, b, vss, vss, 0.4, 0.03});
  cell.add_transistor({"N2", MosType::kNmos, m, c, vss, vss, 0.4, 0.03});
  cell.add_transistor({"N3", MosType::kNmos, y, d, vss, vss, 0.4, 0.03});
  // Complementary PMOS network (dual): (P0(A) | (P1(B) & P2(C))) & P3(D).
  cell.add_transistor({"P3", MosType::kPmos, y, d, pm1, vdd, 0.8, 0.03});
  cell.add_transistor({"P0", MosType::kPmos, pm1, a, vdd, vdd, 0.8, 0.03});
  cell.add_transistor({"P1", MosType::kPmos, pm1, b, pm2, vdd, 0.8, 0.03});
  cell.add_transistor({"P2", MosType::kPmos, pm2, c, vdd, vdd, 0.8, 0.03});
  // Output inverter: Y -> Z.
  cell.add_transistor({"Ninv", MosType::kNmos, z, y, vss, vss, 0.4, 0.03});
  cell.add_transistor({"Pinv", MosType::kPmos, z, y, vdd, vdd, 0.8, 0.03});
  cell.validate();
  return cell;
}

LibraryCell build_function(const std::string& function, const Technology& tech,
                           const DriveSpec& drive, std::uint64_t seed) {
  Rng rng(seed);
  LibraryCell lc;
  lc.cell = build_cell(find_function(function), tech, drive, FlavorSpec{"", 1.0},
                       function + "X" + std::to_string(drive.drive) +
                           variant_suffix(drive.variant),
                       rng);
  lc.function = function;
  lc.technology = tech.name;
  lc.drive = drive.drive;
  lc.variant = drive.variant;
  return lc;
}

CharacterizedCell characterize(const LibraryCell& cell, const Technology& tech) {
  return characterize_cell(cell, tech, CharacterizeOptions{});
}

SmallCorpus make_small_corpus() {
  const Technology soi = technology_28soi();
  const Technology c28 = technology_c28();

  LibraryComposition train_comp;
  train_comp.functions = {"NAND2", "NOR2", "AOI21", "OAI21"};
  train_comp.drives = {{1, StructureVariant::kWide},
                       {2, StructureVariant::kMerged},
                       {2, StructureVariant::kSplit}};
  train_comp.flavors = {{"", 1.0}, {"LP", 0.85}};

  LibraryComposition eval_comp;
  eval_comp.functions = {"NAND2", "NOR2", "AOI21", "XOR2"};  // XOR2 is "new"
  eval_comp.drives = {{1, StructureVariant::kWide}, {2, StructureVariant::kMerged}};
  eval_comp.flavors = {{"", 1.0}};

  SmallCorpus corpus;
  corpus.train = characterize_library(build_library(soi, train_comp), CharacterizeOptions{});
  corpus.eval = characterize_library(build_library(c28, eval_comp), CharacterizeOptions{});
  return corpus;
}

}  // namespace caml::testing
