#pragma once

#include <string>

#include "flow/characterize.hpp"
#include "libgen/builder.hpp"
#include "netlist/cell.hpp"

namespace caml::testing {

/// Hand-written NAND2 matching the paper's Fig. 4 (A top of the NMOS
/// stack, devices named like a vendor netlist).
Cell make_nand2();

/// Hand-written NOR2.
Cell make_nor2();

/// The paper's Fig. 5 example: an NMOS branch ((N0&(N1|N2))|N3) driving
/// net Y, plus an output inverter. The pull-up network complements the
/// pull-down so the cell simulates correctly (Fig. 5 only drew the NMOS
/// half). Function: Z = (A & (B | C)) | D after the output inversion of
/// NOT(...) — i.e. Z = PD(A,B,C,D) of the first stage.
Cell make_fig5_cell();

/// Builds a catalog function under a technology with a fixed seed.
LibraryCell build_function(const std::string& function, const Technology& tech,
                           const DriveSpec& drive = {1, StructureVariant::kWide},
                           std::uint64_t seed = 42);

/// Characterizes one built cell with the default options.
CharacterizedCell characterize(const LibraryCell& cell, const Technology& tech);

/// A small two-technology corpus for flow tests: the same handful of
/// functions built under 28SOI and C28 (plus a C28-only function).
struct SmallCorpus {
  std::vector<CharacterizedCell> train;  ///< 28SOI
  std::vector<CharacterizedCell> eval;   ///< C28
};
SmallCorpus make_small_corpus();

}  // namespace caml::testing
