#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace caml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.fork();
  Rng b(11);
  b.fork();
  EXPECT_EQ(a.next(), b.next());  // parents stay in lockstep
  EXPECT_NE(child.next(), a.next());
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(13);
  const auto idx = rng.sample_indices(100, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(13);
  const auto idx = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a \n"), "a");
}

TEST(Strings, SplitDropsEmptyTokens) {
  EXPECT_EQ(split("a  b\tc"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("  "), std::vector<std::string>{});
  EXPECT_EQ(split("one"), std::vector<std::string>{"one"});
}

TEST(Strings, SplitKeepEmpty) {
  EXPECT_EQ(split_keep_empty("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_keep_empty("", ':'), std::vector<std::string>{""});
  EXPECT_EQ(split_keep_empty("x:", ':'), (std::vector<std::string>{"x", ""}));
}

TEST(Strings, CaseConversions) {
  EXPECT_EQ(to_lower("NaND2"), "nand2");
  EXPECT_EQ(to_upper("pch"), "PCH");
  EXPECT_TRUE(iequals(".SUBCKT", ".subckt"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_TRUE(starts_with_ci(".SUBCKT NAND2", ".subckt"));
  EXPECT_FALSE(starts_with_ci("X", ".subckt"));
}

TEST(Strings, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ";"), "a;b;c");
  EXPECT_EQ(join({}, ";"), "");
  EXPECT_EQ(format_fixed(99.966, 2), "99.97");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
}

TEST(Strings, TryParseAcceptsWholeTokensOnly) {
  EXPECT_EQ(try_parse_uint64("0"), std::uint64_t{0});
  EXPECT_EQ(try_parse_uint64("18446744073709551615"), std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(try_parse_uint64(""));
  EXPECT_FALSE(try_parse_uint64("12x"));
  EXPECT_FALSE(try_parse_uint64(" 12"));
  EXPECT_FALSE(try_parse_uint64("-1"));
  EXPECT_FALSE(try_parse_uint64("18446744073709551616"));  // overflow
  EXPECT_EQ(try_parse_int64("-42"), std::int64_t{-42});
  EXPECT_FALSE(try_parse_int64("4.2"));
  EXPECT_FALSE(try_parse_int64("9223372036854775808"));  // overflow
}

TEST(Strings, CheckedParseThrowsParseErrorWithContext) {
  EXPECT_EQ(parse_size("250", "cell count", 3), 250u);
  EXPECT_EQ(parse_int64("-7", "threshold", 3), -7);
  try {
    parse_size("25O", "cell count", 17);  // letter O, not zero
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 17u);
    EXPECT_NE(std::string(e.what()).find("cell count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("25O"), std::string::npos);
  }
  EXPECT_THROW(parse_uint64("99999999999999999999999", "count", 1), ParseError);
}

TEST(TextTable, AlignsAndRenders) {
  TextTable t;
  t.new_row();
  t.cell("name");
  t.cell("value");
  t.new_row();
  t.cell("accuracy");
  t.cell(99.97, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| accuracy"), std::string::npos);
  EXPECT_NE(out.find("99.97"), std::string::npos);
}

TEST(TextTable, CsvQuoting) {
  TextTable t;
  t.new_row();
  t.cell("a,b");
  t.cell("plain");
  t.cell("q\"q");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "\"a,b\",plain,\"q\"\"q\"\n");
}

TEST(Error, AssertThrowsInsteadOfAborting) {
  EXPECT_THROW(CAML_ASSERT(1 == 2), Error);
  EXPECT_NO_THROW(CAML_ASSERT(1 == 1));
}

TEST(Error, ParseErrorCarriesLine) {
  try {
    throw ParseError("bad token", 42);
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 42u);
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

}  // namespace
}  // namespace caml
