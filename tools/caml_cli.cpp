// caml — command-line front end for the cell-aware generation flows.
//
//   caml characterize <lib.sp> -o <dir>        conventional CA generation
//   caml canonicalize <lib.sp>                 signatures + renaming report
//   caml train <lib.sp> <camodel-dir> -o <models.caml>
//   caml predict <lib.sp> -m <models.caml> -o <dir>
//   caml patterns <lib.sp> <camodel-dir>     cell-aware test pattern report
//   caml hybrid <train.sp> <train-camodels> <target.sp> <target-camodels>
//               [--routing structural|active|hybrid] [--sim-budget B]
//   caml active ...                          hybrid with --routing active
//   caml store <models> --to-binary <out>    convert / inspect model stores
//   caml serve <models.caml> --socket PATH   long-lived inference daemon
//   caml query <cell.sp> --socket PATH       predict via a running daemon
//
// Common options:
//   --policy static|single|exhaustive   stimulus set (default exhaustive<=4
//                                       inputs, single above)
//   --trees N                           forest size for train (default 20)
//   --jobs N                            worker threads (default: one per
//                                       hardware thread; 1 = serial)
//   --inter-shorts                      include inter-transistor bridges
//   --checkpoint-every N                journal flush cadence (characterize)
//   --resume                            skip units a journal records done
//   --trace FILE                        write a Chrome-trace JSON of the run
//   --profile                           print a per-stage timing table on exit
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "active/learner.hpp"
#include "camodel/model_io.hpp"
#include "camodel/pattern_selection.hpp"
#include "flow/checkpoint.hpp"
#include "flow/hybrid.hpp"
#include "flow/model_store.hpp"
#include "netlist/spice_parser.hpp"
#include "netlist/spice_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/binary_store.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace caml;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::string out;
  std::string models;
  std::optional<std::string> policy;
  std::size_t trees = 20;
  std::size_t jobs = std::thread::hardware_concurrency();
  bool inter_shorts = false;
  // characterize crash safety
  std::size_t checkpoint_every = 16;
  bool resume = false;
  // serve / query
  std::string socket;
  std::uint16_t port = 0;
  std::size_t max_queue = 64;
  std::size_t max_batch = 32;
  /// serve: shed new PREDICTs when queue-sojourn p99 exceeds this
  /// (daemon default on at 1000 ms; 0 disables).
  std::size_t shed_target_ms = 1000;
  /// query: per-request compute deadline shipped to the daemon
  /// (protocol v2); 0 sends v1 frames.
  std::size_t deadline_ms = 0;
  bool ping = false;
  bool stats = false;
  // store conversions
  std::string to_binary;
  std::string to_text;
  bool info = false;
  // hybrid / active flow
  std::string routing;
  double sim_budget = 0.0;
  std::string budget_unit = "seconds";
  std::size_t rounds = 8;
  std::size_t trees_per_round = 4;
  std::size_t per_round = 0;
  bool full_refit = false;
  std::string checkpoint_dir;
  // observability
  std::string trace_path;
  bool profile = false;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  caml characterize <lib.sp> -o <dir> [--policy P] [--inter-shorts] [--jobs N]\n"
      "                    [--checkpoint-every N] [--resume]\n"
      "  caml canonicalize <lib.sp>\n"
      "  caml train <lib.sp> <camodel-dir> -o <models.caml> [--trees N] [--jobs N]\n"
      "  caml predict <lib.sp> -m <models.caml> -o <dir> [--policy P] [--jobs N]\n"
      "  caml patterns <lib.sp> <camodel-dir>\n"
      "  caml hybrid <train.sp> <train-camodels> <target.sp> <target-camodels>\n"
      "              [--routing structural|active|hybrid] [--sim-budget B]\n"
      "              [--budget-unit seconds|count] [--rounds N] [--per-round N]\n"
      "              [--trees-per-round N] [--full-refit] [-o <models.caml>]\n"
      "              [--checkpoint DIR] [--resume] [--trees N] [--jobs N]\n"
      "  caml active ...                       (hybrid with --routing active)\n"
      "  caml store <models> (--to-binary <out> | --to-text <out> | --info)\n"
      "  caml serve <models> --socket PATH [--port N] [--jobs N] [--max-queue N]\n"
      "            [--max-batch N] [--shed-target-ms N]\n"
      "  caml query <cell.sp> --socket PATH [--port N] [-o <dir>] [--ping] [--stats]\n"
      "            [--deadline-ms N]\n"
      "policies: static | single | exhaustive (default: exhaustive for\n"
      "cells with <= 4 inputs, single-input-change above)\n"
      "--jobs N: worker threads (default: one per hardware thread;\n"
      "1 = serial). Outputs are identical for every thread count.\n"
      "characterize journals its progress to <dir>/checkpoint.journal\n"
      "(atomic flush every --checkpoint-every cells, default 16); after a\n"
      "crash, --resume skips the recorded cells and the final directory is\n"
      "byte-identical to an uninterrupted run.\n"
      "hybrid: runs the generation flow of the paper's Fig. 7 over the\n"
      "target library, with the training library as prior knowledge.\n"
      "--routing structural simulates structurally new cells and predicts\n"
      "the rest; --routing active runs the budgeted uncertainty loop\n"
      "(simulate the cells the forest is least sure about, retrain with\n"
      "--trees-per-round extra trees, repeat --rounds times or until\n"
      "--sim-budget is spent / margins converge); --routing hybrid blends\n"
      "a structural-similarity prior into the active score. --sim-budget\n"
      "is modeled SPICE seconds (--budget-unit seconds, default) or a\n"
      "cell count (--budget-unit count); 0 = unlimited. -o saves the\n"
      "final per-group forests (active/hybrid only) — byte-identical for\n"
      "any --jobs value and across kill+resume (--checkpoint DIR journals\n"
      "acquisition rounds; --resume replays them). See\n"
      "docs/ACTIVE_LEARNING.md.\n"
      "store: converts between the text interchange store and the binary\n"
      "mmap section (CAMLF1 models.bin): --to-binary writes the binary\n"
      "store, --to-text converts back (byte-identical round trip), --info\n"
      "prints the header and per-group section facts.\n"
      "serve: loads the trained models once and answers query requests\n"
      "over a Unix-domain socket (--socket) or loopback TCP (--port).\n"
      "Binary stores are memory-mapped (zero parse, zero copy); text\n"
      "stores are parsed. Both answer byte-identically.\n"
      "SIGUSR1 dumps the serve_stats block; SIGHUP reloads the model file\n"
      "(validated off the serving threads, old models kept on failure);\n"
      "SIGINT/SIGTERM shut down\n"
      "gracefully (in-flight requests finish). --max-queue bounds the\n"
      "accepted-connection backlog; beyond it clients get an OVERLOADED\n"
      "reject with a retry-after hint instead of unbounded queueing.\n"
      "--max-batch caps how many decoded PREDICT requests one compute\n"
      "worker coalesces (across connections) into a single\n"
      "predict_batch sweep (default 32; 1 = per-request compute).\n"
      "--shed-target-ms: latency-aware load shedding — when the queue's\n"
      "recent p99 sojourn exceeds the target, new PREDICTs are rejected\n"
      "OVERLOADED before queueing (default 1000; 0 disables). Requests\n"
      "whose client deadline expires while queued are answered\n"
      "DEADLINE_EXCEEDED without consuming compute.\n"
      "query: sends each cell of <cell.sp> to a running daemon; writes\n"
      "predicted .camodel files to -o (or stdout). --ping just probes;\n"
      "--stats dumps the daemon's unified metrics snapshot (Prometheus\n"
      "text exposition) and exits. --deadline-ms N ships a per-request\n"
      "compute deadline (protocol v2); the daemon sheds requests whose\n"
      "deadline expired in queue instead of computing stale answers.\n"
      "--trace FILE records every instrumented stage as a Chrome-trace\n"
      "JSON (open in chrome://tracing or Perfetto). --profile prints a\n"
      "per-stage wall/CPU/throughput table on exit. Both only observe:\n"
      "outputs are byte-identical with or without them.\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    const auto count_value = [&]() -> std::size_t {
      const std::string text = value();
      const auto parsed = try_parse_uint64(text);
      if (!parsed) usage(a + " needs a non-negative integer, got '" + text + "'");
      return static_cast<std::size_t>(*parsed);
    };
    const auto real_value = [&]() -> double {
      const std::string text = value();
      char* end = nullptr;
      const double parsed = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || end == text.c_str() || parsed < 0.0) {
        usage(a + " needs a non-negative number, got '" + text + "'");
      }
      return parsed;
    };
    if (a == "-o" || a == "--out") args.out = value();
    else if (a == "-m" || a == "--models") args.models = value();
    else if (a == "--policy") args.policy = value();
    else if (a == "--trees") args.trees = count_value();
    else if (a == "--jobs") args.jobs = count_value();
    else if (a == "--inter-shorts") args.inter_shorts = true;
    else if (a == "--socket") args.socket = value();
    else if (a == "--port") {
      const std::size_t port = count_value();
      if (port == 0 || port > 65535) usage("--port needs a value in 1..65535");
      args.port = static_cast<std::uint16_t>(port);
    }
    else if (a == "--max-queue") args.max_queue = count_value();
    else if (a == "--max-batch") {
      args.max_batch = count_value();
      if (args.max_batch == 0) usage("--max-batch needs a value >= 1");
    }
    else if (a == "--shed-target-ms") args.shed_target_ms = count_value();
    else if (a == "--deadline-ms") {
      args.deadline_ms = count_value();
      if (args.deadline_ms > 0xFFFFFFFFull) usage("--deadline-ms is too large");
    }
    else if (a == "--ping") args.ping = true;
    else if (a == "--stats") args.stats = true;
    else if (a == "--to-binary") args.to_binary = value();
    else if (a == "--to-text") args.to_text = value();
    else if (a == "--info") args.info = true;
    else if (a == "--checkpoint-every") args.checkpoint_every = count_value();
    else if (a == "--resume") args.resume = true;
    else if (a == "--routing") args.routing = value();
    else if (a == "--sim-budget") args.sim_budget = real_value();
    else if (a == "--budget-unit") args.budget_unit = value();
    else if (a == "--rounds") args.rounds = count_value();
    else if (a == "--trees-per-round") args.trees_per_round = count_value();
    else if (a == "--per-round") args.per_round = count_value();
    else if (a == "--full-refit") args.full_refit = true;
    else if (a == "--checkpoint") args.checkpoint_dir = value();
    else if (a == "--trace") args.trace_path = value();
    else if (a == "--profile") args.profile = true;
    else if (a.rfind('-', 0) == 0) usage("unknown option " + a);
    else args.positional.push_back(a);
  }
  // Validate eagerly: policy_for may run on pool workers, where usage()'s
  // std::exit must never fire.
  if (args.policy && *args.policy != "static" && *args.policy != "single" &&
      *args.policy != "exhaustive") {
    usage("unknown policy " + *args.policy);
  }
  return args;
}

StimulusPolicy policy_for(const Args& args, const Cell& cell) {
  if (!args.policy) {
    return cell.num_inputs() <= 4 ? StimulusPolicy::kExhaustivePairs
                                  : StimulusPolicy::kSingleInputChange;
  }
  if (*args.policy == "static") return StimulusPolicy::kStaticOnly;
  if (*args.policy == "single") return StimulusPolicy::kSingleInputChange;
  if (*args.policy == "exhaustive") return StimulusPolicy::kExhaustivePairs;
  usage("unknown policy " + *args.policy);
}

std::vector<Cell> load_cells(const std::string& path) {
  const std::vector<Cell> cells = SpiceParser().parse_file(path);
  if (cells.empty()) throw Error("no subcircuits found in " + path);
  std::cerr << "loaded " << cells.size() << " cells from " << path << '\n';
  return cells;
}

int cmd_characterize(const Args& args) {
  if (args.positional.size() != 1 || args.out.empty()) {
    usage("characterize needs a netlist and -o <dir>");
  }
  std::filesystem::create_directories(args.out);
  const std::vector<Cell> cells = load_cells(args.positional[0]);
  CheckpointJournal journal(args.out, args.checkpoint_every);
  if (args.resume) {
    journal.load();
    if (journal.size() > 0) {
      std::cerr << "resuming: journal records " << journal.size() << " completed cells\n";
    }
  }
  // Generation (the simulation-heavy part) runs on the worker pool. A
  // worker publishes its cell's checksummed artifact atomically and only
  // then journals it (journal-after-data), so a crash at any instant
  // leaves a directory --resume can trust: journaled cells are loaded
  // back (unreadable artifacts are simply re-characterized), the rest
  // re-run, and the final directory — journal included, since it flushes
  // sorted — is byte-identical to an uninterrupted run. Report lines are
  // written serially in netlist order, so stdout is identical for every
  // --jobs value too.
  const std::vector<CaModel> models = parallel_map(cells, args.jobs, [&](const Cell& cell) {
    obs::TraceSpan span("characterize_cell");
    span.attr("cell", cell.name());
    const std::string path = args.out + "/" + cell.name() + ".camodel";
    if (args.resume && journal.completed(cell.name())) {
      try {
        return read_ca_model_file(path, cell);
      } catch (const Error& e) {
        log_warn() << "checkpoint artifact for " << cell.name() << " is unusable ("
                   << e.what() << "); re-characterizing";
      }
    }
    GenerationOptions options;
    options.policy = policy_for(args, cell);
    options.universe.inter_transistor_shorts = args.inter_shorts;
    CaModel model = generate_ca_model(cell, options);
    write_ca_model_file(path, model, cell);
    journal.record(cell.name());
    return model;
  });
  journal.flush();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CaModel& model = models[i];
    std::cout << cell.name() << ": " << model.defects.size() << " defects, "
              << model.count_class(DefectClass::kStatic) << " static / "
              << model.count_class(DefectClass::kDynamic) << " dynamic / "
              << model.count_class(DefectClass::kUndetected) << " undetected, "
              << model.equivalence_classes.size() << " equivalence classes\n";
  }
  std::cout << "wrote " << cells.size() << " CA models to " << args.out << '\n';
  return 0;
}

int cmd_canonicalize(const Args& args) {
  if (args.positional.size() != 1) usage("canonicalize needs a netlist");
  for (const Cell& cell : load_cells(args.positional[0])) {
    const CanonicalCell canon = canonicalize(cell);
    std::cout << cell.name() << " (" << cell.num_inputs() << " inputs, "
              << cell.num_transistors() << " transistors)\n";
    std::cout << "  structure: " << canon.structure_signature << '\n';
    std::cout << "  reduced  : " << canon.reduced_signature << '\n';
    for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
      std::cout << "  " << cell.transistors()[ti].name << " -> " << canon.canonical_name[ti]
                << " (activity " << canon.activity[ti].to_string() << ")\n";
    }
  }
  return 0;
}

int cmd_train(const Args& args) {
  if (args.positional.size() != 2 || args.out.empty()) {
    usage("train needs a netlist, a camodel directory and -o <file>");
  }
  const std::vector<Cell> cells = load_cells(args.positional[0]);
  std::vector<CharacterizedCell> training;
  for (const Cell& cell : cells) {
    const std::string path = args.positional[1] + "/" + cell.name() + ".camodel";
    if (!std::filesystem::exists(path)) {
      std::cerr << "skipping " << cell.name() << ": no model at " << path << '\n';
      continue;
    }
    CharacterizedCell cc;
    cc.source.cell = cell;
    cc.model = read_ca_model_file(path, cell);  // framed or legacy raw
    cc.canonical = canonicalize(cell);
    training.push_back(std::move(cc));
  }
  if (training.empty()) throw Error("no training cells with CA models");
  std::cerr << "training on " << training.size() << " cells\n";
  Log::set_level(LogLevel::kInfo);
  MlOptions options;
  options.forest.num_trees = args.trees;
  options.forest.jobs = args.jobs;
  const GroupModelStore store = GroupModelStore::train(training, options);
  store.save_file(args.out);
  std::cout << "wrote " << store.num_groups() << " group models to " << args.out << '\n';
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional.size() != 1 || args.models.empty() || args.out.empty()) {
    usage("predict needs a netlist, -m <models> and -o <dir>");
  }
  // Binary stores mmap (zero parse), text stores load — same interface,
  // byte-identical predictions either way.
  const std::shared_ptr<const ModelStore> store_ptr = store::open_model_store(args.models);
  const ModelStore& store = *store_ptr;
  std::cerr << "loaded " << store.num_groups() << " group models\n";
  std::filesystem::create_directories(args.out);

  // Inference (matrix construction + batched classification) runs on the
  // worker pool; the store is shared read-only (predict is const and
  // thread-safe). Files and report lines are written serially in netlist
  // order afterwards, so the output is bit-identical for every --jobs
  // value — the same contract characterize has.
  struct Outcome {
    bool ok = false;
    std::string camodel_text;  // serialized on the worker, written serially
    std::string report_line;
  };
  const std::vector<Cell> cells = load_cells(args.positional[0]);
  const std::vector<Outcome> outcomes =
      parallel_map(cells, args.jobs, [&](const Cell& cell) {
        Outcome out;
        std::ostringstream line;
        try {
          const CanonicalCell canon = canonicalize(cell);
          const CaModel predicted =
              store.predict(cell, canon, policy_for(args, cell), SimConfig{});
          out.camodel_text = ca_model_to_string(predicted, cell);
          line << cell.name() << ": predicted (" << predicted.defects.size()
               << " defects, " << predicted.count_class(DefectClass::kStatic)
               << " static / " << predicted.count_class(DefectClass::kDynamic)
               << " dynamic)";
          out.ok = true;
        } catch (const Error& e) {
          line << cell.name() << ": " << e.what();
        }
        out.report_line = line.str();
        return out;
      });

  std::size_t predicted_cells = 0, skipped = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Outcome& out = outcomes[i];
    if (out.ok) {
      // Raw .camodel text (byte-compatible with `caml query`), but
      // published atomically so a crash never leaves a torn file.
      io::write_file_atomic(args.out + "/" + cells[i].name() + ".camodel",
                            out.camodel_text);
      ++predicted_cells;
    } else {
      ++skipped;
    }
    std::cout << out.report_line << '\n';
  }
  std::cout << predicted_cells << " cells predicted, " << skipped
            << " need conventional generation\n";
  return 0;
}

/// Loads any store file as an owning GroupModelStore (materializing a
/// binary store through the validated reader) — the conversion path of
/// `caml store`.
GroupModelStore load_owning_store(const std::string& path) {
  if (store::is_binary_store_file(path)) {
    return store::MappedModelStore::open(path).materialize();
  }
  return GroupModelStore::load_file(path);
}

void print_matrix_options(const MatrixOptions& m) {
  std::cout << "  matrix: activity=" << m.include_activity
            << " response=" << m.include_response
            << " truthtable=" << m.include_truth_table
            << " kind=" << m.include_defect_kind << '\n';
}

int cmd_store(const Args& args) {
  if (args.positional.size() != 1) usage("store needs a model-store file");
  const std::string path = args.positional[0];
  const int modes =
      (args.to_binary.empty() ? 0 : 1) + (args.to_text.empty() ? 0 : 1) + (args.info ? 1 : 0);
  if (modes != 1) {
    usage("store needs exactly one of --to-binary <out>, --to-text <out>, --info");
  }
  if (!args.to_binary.empty()) {
    const GroupModelStore owned = load_owning_store(path);
    store::write_binary_store_file(args.to_binary, owned);
    std::cout << "wrote binary store " << args.to_binary << " (" << owned.num_groups()
              << " groups)\n";
    return 0;
  }
  if (!args.to_text.empty()) {
    const GroupModelStore owned = load_owning_store(path);
    owned.save_file(args.to_text);
    std::cout << "wrote text store " << args.to_text << " (" << owned.num_groups()
              << " groups)\n";
    return 0;
  }
  if (store::is_binary_store_file(path)) {
    const store::MappedModelStore mapped = store::MappedModelStore::open(path);
    std::cout << path << ": binary model store (CAMLF1 " << store::kBinaryStoreKind << ")\n"
              << "  groups: " << mapped.num_groups() << '\n'
              << "  bytes mapped: " << mapped.bytes_mapped() << '\n';
    print_matrix_options(mapped.matrix_options());
    for (const store::MappedModelStore::GroupInfo& g : mapped.group_infos()) {
      std::cout << "  group (" << g.key.num_inputs << " in, " << g.key.num_transistors
                << " T): " << g.num_trees << " trees, " << g.num_features
                << " features, section " << g.forest_size << " bytes at payload offset "
                << g.forest_offset << '\n';
    }
  } else {
    const GroupModelStore owned = GroupModelStore::load_file(path);
    std::cout << path << ": text model store\n  groups: " << owned.num_groups() << '\n';
    print_matrix_options(owned.matrix_options());
    for (const GroupKey& key : owned.group_keys()) {
      const RandomForest* forest = owned.forest_for(key);
      std::cout << "  group (" << key.num_inputs << " in, " << key.num_transistors
                << " T): " << forest->trees().size() << " trees, "
                << forest->num_features() << " features\n";
    }
  }
  return 0;
}

/// serve-side store observability (recorded at startup and on every
/// SIGHUP reload): how long the load/validate took and how many bytes
/// the serving store keeps memory-mapped (0 for a text store, which is
/// parsed into owned memory).
void record_store_metrics(const ModelStore& model_store, std::int64_t load_us) {
  obs::Registry::global()
      .histogram("caml_store_reload_duration_us",
                 "Model store load/validate wall time per (re)load, microseconds")
      .record(static_cast<std::uint64_t>(load_us));
  const auto* mapped = dynamic_cast<const store::MappedModelStore*>(&model_store);
  obs::Registry::global()
      .gauge("caml_store_bytes_mapped",
             "Bytes of the serving model store currently memory-mapped")
      .set(mapped == nullptr ? 0 : static_cast<std::int64_t>(mapped->bytes_mapped()));
}

/// open_model_store + metrics, shared by serve startup and SIGHUP.
std::shared_ptr<const ModelStore> open_store_timed(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const ModelStore> opened = store::open_model_store(path);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  record_store_metrics(*opened, us);
  return opened;
}

// Signal handlers must stay async-signal-safe: the handler only writes
// the signal number to this self-pipe; the main thread polls the read
// end and does the actual work (stats dump / graceful stop).
int g_signal_pipe_wr = -1;

void signal_to_pipe(int sig) {
  const unsigned char byte = static_cast<unsigned char>(sig);
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe_wr, &byte, 1);
}

int cmd_serve(const Args& args) {
  if (args.positional.size() != 1 || (args.socket.empty() && args.port == 0)) {
    usage("serve needs <models.caml> and --socket PATH (or --port N)");
  }
  const std::string store_path = args.positional[0];
  Log::set_level(LogLevel::kInfo);
  std::shared_ptr<const ModelStore> store;
  try {
    store = open_store_timed(store_path);
  } catch (const Error& e) {
    // Structured startup rejection: a store that fails checksum, bounds
    // or parse validation must never start serving. Exit code 3
    // distinguishes "bad model store" from generic failures for
    // supervisors.
    std::cerr << "error: refusing to serve " << store_path << ": " << e.what() << '\n';
    return 3;
  }
  std::cerr << "loaded " << store->num_groups() << " group models from " << store_path
            << '\n';

  serve::ServerOptions options;
  options.socket_path = args.socket;
  options.tcp_port = args.port;
  options.jobs = args.jobs;
  options.max_queue = args.max_queue;
  options.max_batch = args.max_batch;
  options.sojourn_target_ms = static_cast<int>(args.shed_target_ms);
  serve::Server server(std::move(store), options);
  // Store-fault recovery: when a serving mmap snapshot faults (backing
  // file truncated/rewritten in place), the server re-opens from disk
  // through the same validated path SIGHUP uses; on failure it falls
  // back to the last-good snapshot. Either way the daemon stays up.
  server.set_store_refresh([store_path] { return open_store_timed(store_path); });

  Pipe signal_pipe = make_pipe();
  g_signal_pipe_wr = signal_pipe.wr.get();
  struct sigaction sa{};
  sa.sa_handler = signal_to_pipe;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGUSR1, &sa, nullptr);
  sigaction(SIGHUP, &sa, nullptr);

  server.start();
  if (server.port() != 0) {
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;
  }
  for (;;) {
    if (!wait_readable(signal_pipe.rd.get(), -1)) continue;
    unsigned char sig = 0;
    if (::read(signal_pipe.rd.get(), &sig, 1) != 1) continue;
    if (sig == SIGUSR1) {
      // Per-server view first, then the unified process-wide registry
      // (same text a STATS request or `caml query --stats` returns).
      std::cerr << serve::format_stats(server.stats());
      std::cerr << obs::Registry::global().snapshot().to_text();
      continue;
    }
    if (sig == SIGHUP) {
      // Hot reload: open + validate on this thread (workers keep serving
      // the current store), swap in only on success. A binary store
      // re-maps; the old mapping stays alive until the last in-flight
      // batch drops its snapshot.
      try {
        server.reload(open_store_timed(store_path));
      } catch (const Error& e) {
        log_warn() << "reload of " << store_path
                   << " failed; keeping the current models: " << e.what();
      }
      continue;
    }
    break;  // SIGINT / SIGTERM
  }
  std::cerr << "shutting down (draining in-flight requests)\n";
  server.stop();
  std::cerr << serve::format_stats(server.stats());
  return 0;
}

int cmd_query(const Args& args) {
  if (args.socket.empty() && args.port == 0) {
    usage("query needs --socket PATH (or --port N)");
  }
  serve::ClientOptions copts;
  copts.socket_path = args.socket;
  copts.port = args.port;
  copts.deadline_ms = static_cast<std::uint32_t>(args.deadline_ms);
  serve::Client client(copts);
  if (args.ping) {
    if (!args.positional.empty()) usage("--ping takes no netlist");
    client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (args.stats) {
    if (!args.positional.empty()) usage("--stats takes no netlist");
    std::cout << client.stats();
    return 0;
  }
  if (args.positional.size() != 1) usage("query needs a netlist and --socket/--port");

  std::ifstream is(args.positional[0]);
  if (!is) throw Error("cannot read " + args.positional[0]);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string file_text = buffer.str();
  const std::vector<Cell> cells = SpiceParser().parse_string(file_text);
  if (cells.empty()) throw Error("no subcircuits found in " + args.positional[0]);
  if (!args.out.empty()) std::filesystem::create_directories(args.out);

  const SpiceWriter writer;
  std::size_t predicted = 0, failed = 0;
  for (const Cell& cell : cells) {
    // A single-cell file is forwarded verbatim (byte-transparent); a
    // multi-cell library is split into one request per cell.
    const std::string request = cells.size() == 1 ? file_text : writer.to_string(cell);
    try {
      const std::string camodel = client.predict_cell(request);
      if (args.out.empty()) {
        std::cout << camodel;
      } else {
        io::write_file_atomic(args.out + "/" + cell.name() + ".camodel", camodel);
        std::cout << cell.name() << ": predicted\n";
      }
      ++predicted;
    } catch (const serve::RemoteError& e) {
      std::cout << cell.name() << ": " << e.what() << '\n';
      ++failed;
    }
  }
  if (!args.out.empty() || failed > 0) {
    std::cout << predicted << " cells predicted, " << failed << " failed\n";
  }
  return failed == 0 ? 0 : 1;
}

/// Loads a library's cells plus their (ground-truth) CA models — the
/// CharacterizedCell inputs the hybrid/active flows consume.
std::vector<CharacterizedCell> load_characterized(const std::string& netlist,
                                                  const std::string& camodel_dir) {
  std::vector<CharacterizedCell> out;
  for (const Cell& cell : load_cells(netlist)) {
    const std::string path = camodel_dir + "/" + cell.name() + ".camodel";
    if (!std::filesystem::exists(path)) {
      std::cerr << "skipping " << cell.name() << ": no model at " << path << '\n';
      continue;
    }
    CharacterizedCell cc;
    cc.source.cell = cell;
    cc.model = read_ca_model_file(path, cell);
    cc.canonical = canonicalize(cc.source.cell);
    out.push_back(std::move(cc));
  }
  if (out.empty()) throw Error("no cells with CA models under " + camodel_dir);
  return out;
}

/// One deterministic per-cell routing line. Everything on stdout is a
/// pure function of the inputs (no wall-clock), so smoke scripts can
/// byte-compare runs across --jobs values and kill+resume.
void print_outcome_line(const CharacterizedCell& cell, const HybridCellOutcome& o,
                        bool acquired) {
  std::cout << cell.model.cell_name << " [" << structure_match_name(o.match) << "] -> "
            << (o.routed_to_ml ? "ML" : (acquired ? "acquired" : "simulation"));
  if (o.routed_to_ml) {
    std::cout << ", accuracy " << format_fixed(100.0 * o.accuracy, 2) << "%";
  }
  if (o.degraded) std::cout << " (degraded)";
  std::cout << '\n';
}

int cmd_hybrid(const Args& args, RoutingPolicy default_routing) {
  if (args.positional.size() != 4) {
    usage(args.command + " needs <train.sp> <train-camodels> <target.sp> <target-camodels>");
  }
  RoutingPolicy routing = default_routing;
  if (!args.routing.empty()) {
    const std::optional<RoutingPolicy> parsed = parse_routing_policy(args.routing);
    if (!parsed) usage("unknown routing policy " + args.routing);
    routing = *parsed;
  }
  const std::optional<active::BudgetUnit> unit = active::parse_budget_unit(args.budget_unit);
  if (!unit) usage("unknown budget unit " + args.budget_unit + " (seconds | count)");

  const std::vector<CharacterizedCell> training =
      load_characterized(args.positional[0], args.positional[1]);
  const std::vector<CharacterizedCell> targets =
      load_characterized(args.positional[2], args.positional[3]);
  std::cerr << "hybrid flow: " << training.size() << " training cells, " << targets.size()
            << " targets, routing " << routing_policy_name(routing) << '\n';

  HybridOptions base;
  base.ml.forest.num_trees = args.trees;
  base.ml.forest.jobs = args.jobs;
  base.routing = routing;
  base.checkpoint.dir = args.checkpoint_dir;
  base.checkpoint.every = args.checkpoint_every;
  base.checkpoint.resume = args.resume;
  if (!base.checkpoint.dir.empty()) std::filesystem::create_directories(base.checkpoint.dir);

  if (routing == RoutingPolicy::kStructural) {
    if (!args.out.empty()) usage("-o (final model store) needs --routing active|hybrid");
    const HybridReport report = run_hybrid_flow(training, targets, base);
    for (const HybridCellOutcome& o : report.outcomes) {
      print_outcome_line(targets[o.cell_index], o, false);
    }
    double acc_sum = 0.0;
    for (const HybridCellOutcome& o : report.outcomes) {
      if (o.routed_to_ml) acc_sum += o.accuracy;
    }
    const std::size_t routed = report.count_routed_to_ml();
    std::cout << "routing=structural targets=" << report.outcomes.size() << " ml=" << routed
              << " degraded=" << report.count_degraded() << " mean-ml-accuracy="
              << format_fixed(routed == 0 ? 0.0 : acc_sum / static_cast<double>(routed), 4)
              << " accuracy98=" << format_fixed(report.ml_accuracy_above(0.98), 4) << '\n';
    // Wall-clock-derived accounting is inherently non-reproducible, so
    // it goes to stderr only.
    std::cerr << "modeled conventional-only: "
              << format_fixed(report.conventional_only_seconds(), 1) << " s, hybrid: "
              << format_fixed(report.hybrid_seconds(), 1) << " s, overall reduction "
              << format_fixed(100.0 * report.overall_reduction(), 2) << "%\n";
    return 0;
  }

  active::ActiveOptions options;
  options.base = base;
  options.sim_budget = args.sim_budget;
  options.budget_unit = *unit;
  options.max_rounds = args.rounds;
  options.acquisitions_per_round = args.per_round;
  options.trees_per_round = args.trees_per_round;
  options.full_refit = args.full_refit;
  options.jobs = args.jobs;

  const active::ActiveReport report = active::run_active_flow(training, targets, options);
  for (const HybridCellOutcome& o : report.hybrid.outcomes) {
    print_outcome_line(targets[o.cell_index], o, report.acquired_mask[o.cell_index] != 0);
  }
  for (const active::RoundStats& r : report.rounds) {
    std::cout << "round " << r.round << ": acquired=" << r.acquired
              << " spent=" << format_fixed(r.spent_after, 3)
              << " min-conf=" << format_fixed(r.min_confidence, 4)
              << " mean-conf=" << format_fixed(r.mean_confidence, 4) << '\n';
  }
  double acc_sum = 0.0;
  std::size_t predicted = 0;
  for (const HybridCellOutcome& o : report.hybrid.outcomes) {
    if (!o.routed_to_ml) continue;
    ++predicted;
    acc_sum += o.accuracy;
  }
  std::cout << "routing=" << routing_policy_name(report.policy)
            << " targets=" << report.hybrid.outcomes.size() << " acquired=" << report.acquired
            << " predicted=" << predicted << " forced=" << report.forced_conventional
            << " degraded=" << report.hybrid.count_degraded()
            << " budget=" << format_fixed(report.budget, 3)
            << " spent=" << format_fixed(report.spent, 3)
            << " unit=" << active::budget_unit_name(*unit) << " mean-ml-accuracy="
            << format_fixed(predicted == 0 ? 0.0 : acc_sum / static_cast<double>(predicted), 4)
            << " accuracy98=" << format_fixed(report.hybrid.ml_accuracy_above(0.98), 4)
            << '\n';
  if (!args.out.empty()) {
    report.models.save_file(args.out);
    std::cerr << "wrote " << report.models.num_groups() << " group models to " << args.out
              << '\n';
  }
  return 0;
}

int cmd_patterns(const Args& args) {
  if (args.positional.size() != 2) usage("patterns needs a netlist and a camodel directory");
  for (const Cell& cell : load_cells(args.positional[0])) {
    const std::string path = args.positional[1] + "/" + cell.name() + ".camodel";
    if (!std::filesystem::exists(path)) {
      std::cerr << "skipping " << cell.name() << ": no model at " << path << '\n';
      continue;
    }
    const CaModel model = read_ca_model_file(path, cell);  // framed or legacy raw
    const PatternSelection sel = select_patterns(model);
    std::cout << cell.name() << ": " << sel.stimuli.size() << " patterns cover "
              << model.defects.size() - sel.undetected.size() << "/" << model.defects.size()
              << " defects (" << sel.undetected.size() << " undetectable)\n";
    for (std::size_t s : sel.stimuli) {
      std::cout << "  " << model.stimuli[s].to_string()
                << (model.stimuli[s].is_static() ? "  (static)" : "  (two-pattern)") << '\n';
    }
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const Args& args) {
  if (args.command == "characterize") return cmd_characterize(args);
  if (args.command == "canonicalize") return cmd_canonicalize(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "predict") return cmd_predict(args);
  if (args.command == "patterns") return cmd_patterns(args);
  if (args.command == "hybrid") return cmd_hybrid(args, RoutingPolicy::kStructural);
  if (args.command == "active") return cmd_hybrid(args, RoutingPolicy::kActive);
  if (args.command == "store") return cmd_store(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "query") return cmd_query(args);
  usage("unknown command " + args.command);
}

/// Flushes observability artifacts; runs on every exit path (success,
/// caml::Error, usage() would have exited before collection started).
void finish_obs(const Args& args) {
  if (!args.trace_path.empty()) {
    try {
      obs::trace_stop_write(args.trace_path);
      std::cerr << "wrote trace to " << args.trace_path;
      if (const std::uint64_t dropped = obs::trace_dropped_events(); dropped > 0) {
        std::cerr << " (" << dropped << " events dropped past the buffer cap)";
      }
      std::cerr << '\n';
    } catch (const caml::Error& e) {
      std::cerr << "error: trace write failed: " << e.what() << '\n';
    }
  }
  if (args.profile) std::cerr << obs::profile_summary();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.trace_path.empty()) obs::trace_start();
  if (args.profile) obs::profile_start();
  try {
    const int rc = dispatch(args);
    finish_obs(args);
    return rc;
  } catch (const caml::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    finish_obs(args);
    return 1;
  }
}
