// caml — command-line front end for the cell-aware generation flows.
//
//   caml characterize <lib.sp> -o <dir>        conventional CA generation
//   caml canonicalize <lib.sp>                 signatures + renaming report
//   caml train <lib.sp> <camodel-dir> -o <models.caml>
//   caml predict <lib.sp> -m <models.caml> -o <dir>
//   caml patterns <lib.sp> <camodel-dir>     cell-aware test pattern report
//
// Common options:
//   --policy static|single|exhaustive   stimulus set (default exhaustive<=4
//                                       inputs, single above)
//   --trees N                           forest size for train (default 20)
//   --jobs N                            worker threads (default: one per
//                                       hardware thread; 1 = serial)
//   --inter-shorts                      include inter-transistor bridges
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "camodel/model_io.hpp"
#include "camodel/pattern_selection.hpp"
#include "flow/model_store.hpp"
#include "netlist/spice_parser.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace caml;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::string out;
  std::string models;
  std::optional<std::string> policy;
  std::size_t trees = 20;
  std::size_t jobs = std::thread::hardware_concurrency();
  bool inter_shorts = false;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  caml characterize <lib.sp> -o <dir> [--policy P] [--inter-shorts] [--jobs N]\n"
      "  caml canonicalize <lib.sp>\n"
      "  caml train <lib.sp> <camodel-dir> -o <models.caml> [--trees N] [--jobs N]\n"
      "  caml predict <lib.sp> -m <models.caml> -o <dir> [--policy P]\n"
      "  caml patterns <lib.sp> <camodel-dir>\n"
      "policies: static | single | exhaustive (default: exhaustive for\n"
      "cells with <= 4 inputs, single-input-change above)\n"
      "--jobs N: worker threads (default: one per hardware thread;\n"
      "1 = serial). Outputs are identical for every thread count.\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    const auto count_value = [&]() -> std::size_t {
      const std::string text = value();
      const auto parsed = try_parse_uint64(text);
      if (!parsed) usage(a + " needs a non-negative integer, got '" + text + "'");
      return static_cast<std::size_t>(*parsed);
    };
    if (a == "-o" || a == "--out") args.out = value();
    else if (a == "-m" || a == "--models") args.models = value();
    else if (a == "--policy") args.policy = value();
    else if (a == "--trees") args.trees = count_value();
    else if (a == "--jobs") args.jobs = count_value();
    else if (a == "--inter-shorts") args.inter_shorts = true;
    else if (a.rfind('-', 0) == 0) usage("unknown option " + a);
    else args.positional.push_back(a);
  }
  // Validate eagerly: policy_for may run on pool workers, where usage()'s
  // std::exit must never fire.
  if (args.policy && *args.policy != "static" && *args.policy != "single" &&
      *args.policy != "exhaustive") {
    usage("unknown policy " + *args.policy);
  }
  return args;
}

StimulusPolicy policy_for(const Args& args, const Cell& cell) {
  if (!args.policy) {
    return cell.num_inputs() <= 4 ? StimulusPolicy::kExhaustivePairs
                                  : StimulusPolicy::kSingleInputChange;
  }
  if (*args.policy == "static") return StimulusPolicy::kStaticOnly;
  if (*args.policy == "single") return StimulusPolicy::kSingleInputChange;
  if (*args.policy == "exhaustive") return StimulusPolicy::kExhaustivePairs;
  usage("unknown policy " + *args.policy);
}

std::vector<Cell> load_cells(const std::string& path) {
  const std::vector<Cell> cells = SpiceParser().parse_file(path);
  if (cells.empty()) throw Error("no subcircuits found in " + path);
  std::cerr << "loaded " << cells.size() << " cells from " << path << '\n';
  return cells;
}

int cmd_characterize(const Args& args) {
  if (args.positional.size() != 1 || args.out.empty()) {
    usage("characterize needs a netlist and -o <dir>");
  }
  std::filesystem::create_directories(args.out);
  const std::vector<Cell> cells = load_cells(args.positional[0]);
  // Generation (the simulation-heavy part) runs on the worker pool;
  // files and report lines are written serially in netlist order, so the
  // output is identical for every --jobs value.
  const std::vector<CaModel> models = parallel_map(cells, args.jobs, [&](const Cell& cell) {
    GenerationOptions options;
    options.policy = policy_for(args, cell);
    options.universe.inter_transistor_shorts = args.inter_shorts;
    return generate_ca_model(cell, options);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CaModel& model = models[i];
    std::ofstream os(args.out + "/" + cell.name() + ".camodel");
    write_ca_model(os, model, cell);
    std::cout << cell.name() << ": " << model.defects.size() << " defects, "
              << model.count_class(DefectClass::kStatic) << " static / "
              << model.count_class(DefectClass::kDynamic) << " dynamic / "
              << model.count_class(DefectClass::kUndetected) << " undetected, "
              << model.equivalence_classes.size() << " equivalence classes\n";
  }
  std::cout << "wrote " << cells.size() << " CA models to " << args.out << '\n';
  return 0;
}

int cmd_canonicalize(const Args& args) {
  if (args.positional.size() != 1) usage("canonicalize needs a netlist");
  for (const Cell& cell : load_cells(args.positional[0])) {
    const CanonicalCell canon = canonicalize(cell);
    std::cout << cell.name() << " (" << cell.num_inputs() << " inputs, "
              << cell.num_transistors() << " transistors)\n";
    std::cout << "  structure: " << canon.structure_signature << '\n';
    std::cout << "  reduced  : " << canon.reduced_signature << '\n';
    for (std::size_t ti = 0; ti < cell.num_transistors(); ++ti) {
      std::cout << "  " << cell.transistors()[ti].name << " -> " << canon.canonical_name[ti]
                << " (activity " << canon.activity[ti].to_string() << ")\n";
    }
  }
  return 0;
}

int cmd_train(const Args& args) {
  if (args.positional.size() != 2 || args.out.empty()) {
    usage("train needs a netlist, a camodel directory and -o <file>");
  }
  const std::vector<Cell> cells = load_cells(args.positional[0]);
  std::vector<CharacterizedCell> training;
  for (const Cell& cell : cells) {
    const std::string path = args.positional[1] + "/" + cell.name() + ".camodel";
    std::ifstream is(path);
    if (!is) {
      std::cerr << "skipping " << cell.name() << ": no model at " << path << '\n';
      continue;
    }
    CharacterizedCell cc;
    cc.source.cell = cell;
    cc.model = read_ca_model(is, cell);
    cc.canonical = canonicalize(cell);
    training.push_back(std::move(cc));
  }
  if (training.empty()) throw Error("no training cells with CA models");
  std::cerr << "training on " << training.size() << " cells\n";
  Log::set_level(LogLevel::kInfo);
  MlOptions options;
  options.forest.num_trees = args.trees;
  options.forest.jobs = args.jobs;
  const GroupModelStore store = GroupModelStore::train(training, options);
  std::ofstream os(args.out);
  if (!os) throw Error("cannot write " + args.out);
  store.save(os);
  std::cout << "wrote " << store.num_groups() << " group models to " << args.out << '\n';
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional.size() != 1 || args.models.empty() || args.out.empty()) {
    usage("predict needs a netlist, -m <models> and -o <dir>");
  }
  std::ifstream ms(args.models);
  if (!ms) throw Error("cannot read " + args.models);
  const GroupModelStore store = GroupModelStore::load(ms);
  std::cerr << "loaded " << store.num_groups() << " group models\n";
  std::filesystem::create_directories(args.out);

  std::size_t predicted_cells = 0, skipped = 0;
  for (const Cell& cell : load_cells(args.positional[0])) {
    const CanonicalCell canon = canonicalize(cell);
    try {
      const CaModel predicted =
          store.predict(cell, canon, policy_for(args, cell), SimConfig{});
      std::ofstream os(args.out + "/" + cell.name() + ".camodel");
      write_ca_model(os, predicted, cell);
      std::cout << cell.name() << ": predicted (" << predicted.defects.size() << " defects, "
                << predicted.count_class(DefectClass::kStatic) << " static / "
                << predicted.count_class(DefectClass::kDynamic) << " dynamic)\n";
      ++predicted_cells;
    } catch (const Error& e) {
      std::cout << cell.name() << ": " << e.what() << '\n';
      ++skipped;
    }
  }
  std::cout << predicted_cells << " cells predicted, " << skipped
            << " need conventional generation\n";
  return 0;
}

int cmd_patterns(const Args& args) {
  if (args.positional.size() != 2) usage("patterns needs a netlist and a camodel directory");
  for (const Cell& cell : load_cells(args.positional[0])) {
    const std::string path = args.positional[1] + "/" + cell.name() + ".camodel";
    std::ifstream is(path);
    if (!is) {
      std::cerr << "skipping " << cell.name() << ": no model at " << path << '\n';
      continue;
    }
    const CaModel model = read_ca_model(is, cell);
    const PatternSelection sel = select_patterns(model);
    std::cout << cell.name() << ": " << sel.stimuli.size() << " patterns cover "
              << model.defects.size() - sel.undetected.size() << "/" << model.defects.size()
              << " defects (" << sel.undetected.size() << " undetectable)\n";
    for (std::size_t s : sel.stimuli) {
      std::cout << "  " << model.stimuli[s].to_string()
                << (model.stimuli[s].is_static() ? "  (static)" : "  (two-pattern)") << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "characterize") return cmd_characterize(args);
    if (args.command == "canonicalize") return cmd_canonicalize(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "patterns") return cmd_patterns(args);
    usage("unknown command " + args.command);
  } catch (const caml::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
